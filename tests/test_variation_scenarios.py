"""Tests for the variation-scenario layer: correlated bit-cell models,
process corners, environment trajectories, cache-identity guarantees, the
stratified canary policy wiring, and the ``variation_scenarios`` driver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator import NOMINAL_OPERATING_POINT, Snnac, SnnacConfig
from repro.experiments.cache import ArtifactCache, cache_digest
from repro.matic.flow import MaticFlow
from repro.sram import (
    FAST_CORNER,
    SLOW_CORNER,
    TYPICAL_CORNER,
    CorrelatedVminModel,
    CorrelationSpec,
    EmpiricalVminModel,
    EnvironmentalConditions,
    EnvironmentTrajectory,
    GaussianVminModel,
    SramBank,
    TemperatureChamber,
    TrajectoryStep,
    VariationScenario,
    WeightMemorySystem,
)
from repro.sram.profiler import SramProfiler


class TestCorrelatedVminModel:
    @pytest.mark.parametrize("base_cls", [EmpiricalVminModel, GaussianVminModel])
    def test_zero_correlation_is_bit_identical_to_base(self, base_cls):
        base = base_cls()
        wrapped = CorrelatedVminModel(base=base)
        a = base.sample(64, 16, np.random.default_rng(5))
        b = wrapped.sample(64, 16, np.random.default_rng(5))
        np.testing.assert_array_equal(a.vmin_read, b.vmin_read)
        np.testing.assert_array_equal(a.preferred_state, b.preferred_state)

    def test_sampling_is_reproducible(self):
        model = CorrelatedVminModel(row=0.3, region=0.2)
        a = model.sample(32, 16, np.random.default_rng(9))
        b = model.sample(32, 16, np.random.default_rng(9))
        np.testing.assert_array_equal(a.vmin_read, b.vmin_read)
        np.testing.assert_array_equal(a.preferred_state, b.preferred_state)

    def test_validation(self):
        with pytest.raises(ValueError):
            CorrelatedVminModel(row=-0.1)
        with pytest.raises(ValueError):
            CorrelatedVminModel(row=1.0)
        with pytest.raises(ValueError):
            CorrelatedVminModel(row=0.6, region=0.5)  # shared variance >= 1
        with pytest.raises(ValueError):
            CorrelatedVminModel(column_group_size=0)
        with pytest.raises(ValueError):
            CorrelatedVminModel(num_regions=0)

    def test_failure_probability_delegates_to_base(self):
        base = EmpiricalVminModel()
        model = CorrelatedVminModel(base=base, row=0.4)
        voltages = np.linspace(0.40, 0.55, 5)
        np.testing.assert_array_equal(
            model.failure_probability(voltages), base.failure_probability(voltages)
        )

    def test_row_correlation_clusters_row_means(self):
        """Shared per-row components inflate the variance of row means far
        beyond the i.i.d. sampling noise at equal marginal variance."""
        iid = CorrelatedVminModel()
        correlated = CorrelatedVminModel(row=0.5)
        iid_rows = iid.sample(256, 16, np.random.default_rng(3)).vmin_read.mean(axis=1)
        corr_rows = correlated.sample(
            256, 16, np.random.default_rng(3)
        ).vmin_read.mean(axis=1)
        assert corr_rows.var() > 3 * iid_rows.var()

    def test_region_correlation_clusters_fault_maps(self):
        spec = CorrelationSpec.from_shape("region", 0.6)
        scenario = VariationScenario(name="region-test", correlation=spec)
        iid_bank = SramBank(256, 16, seed=7)
        corr_bank = SramBank(256, 16, seed=7, scenario=scenario)
        voltage = 0.47
        iid_corr = iid_bank.fault_map_at(voltage).spatial_autocorrelation("column")
        corr_corr = corr_bank.fault_map_at(voltage).spatial_autocorrelation("column")
        assert corr_corr > iid_corr

    def test_preferred_one_probability_respected(self):
        base = GaussianVminModel(preferred_one_probability=1.0)
        model = CorrelatedVminModel(base=base, row=0.3)
        cells = model.sample(64, 16, np.random.default_rng(1))
        assert np.all(cells.preferred_state == 1)

    @settings(max_examples=20, deadline=None)
    @given(
        row=st.floats(0.0, 0.45),
        region=st.floats(0.0, 0.45),
    )
    def test_marginals_preserved_for_any_strengths(self, row, region):
        """For any strengths in [0, 1) the per-cell marginal distribution
        matches the i.i.d. base.  Sampled across many populations (distinct
        seeds) so shared components average out; a single population's
        cross-sectional std is biased low under shared components."""
        base = GaussianVminModel()
        model = CorrelatedVminModel(base=base, row=row, region=region)
        cells = np.concatenate(
            [
                model.sample(32, 16, np.random.default_rng(s)).vmin_read.ravel()
                for s in range(24)
            ]
        )
        assert cells.mean() == pytest.approx(base.mean, abs=4e-3)
        assert cells.std() == pytest.approx(base.sigma, rel=0.12)


class TestCorrelationSpec:
    def test_from_shape(self):
        assert CorrelationSpec.from_shape("iid", 0.7).is_iid
        assert CorrelationSpec.from_shape("row", 0.5).row == 0.5
        assert CorrelationSpec.from_shape("column", 0.5).column_group == 0.5
        assert CorrelationSpec.from_shape("region", 0.5).region == 0.5
        mixed = CorrelationSpec.from_shape("mixed", 0.6)
        assert mixed.total == pytest.approx(0.6)
        assert mixed.row == pytest.approx(0.3)

    def test_from_shape_rejects_unknown(self):
        with pytest.raises(ValueError):
            CorrelationSpec.from_shape("checkerboard", 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            CorrelationSpec(row=1.0)
        with pytest.raises(ValueError):
            CorrelationSpec(row=0.5, column_group=0.5)
        with pytest.raises(ValueError):
            CorrelationSpec(num_regions=0)

    def test_spec_keys_distinguish_structures(self):
        keys = {
            cache_digest(CorrelationSpec().spec_key()),
            cache_digest(CorrelationSpec(row=0.3).spec_key()),
            cache_digest(CorrelationSpec(region=0.3).spec_key()),
            cache_digest(CorrelationSpec(row=0.3, num_regions=8).spec_key()),
        }
        assert len(keys) == 4


class TestEnvironmentTrajectory:
    def test_validation(self):
        with pytest.raises(ValueError):
            EnvironmentTrajectory(steps=())
        with pytest.raises(ValueError):
            EnvironmentTrajectory(
                steps=(
                    TrajectoryStep(2.0, EnvironmentalConditions()),
                    TrajectoryStep(1.0, EnvironmentalConditions()),
                )
            )
        with pytest.raises(ValueError):
            EnvironmentTrajectory(
                steps=(TrajectoryStep(-1.0, EnvironmentalConditions()),)
            )

    def test_from_chamber_matches_schedule(self):
        chamber = TemperatureChamber()
        trajectory = EnvironmentTrajectory.from_chamber(chamber, dwell_hours=2.0)
        chamber_conditions = chamber.conditions()
        lifted = trajectory.conditions()
        assert len(lifted) == len(chamber_conditions)
        assert [c.temperature for c in lifted] == [
            c.temperature for c in chamber_conditions
        ]
        assert trajectory.steps[-1].time_hours == pytest.approx(
            2.0 * (len(lifted) - 1)
        )

    def test_aging_accumulates_over_time(self):
        trajectory = EnvironmentTrajectory.from_chamber(
            TemperatureChamber(), dwell_hours=1.0, aging_vmin_shift_per_hour=1e-3
        )
        shifts = [c.vmin_shift for c in trajectory.conditions()]
        assert shifts[0] == pytest.approx(0.0)
        assert shifts == sorted(shifts)
        assert shifts[-1] == pytest.approx(1e-3 * (len(shifts) - 1))

    def test_environment_vmin_shift_raises_fault_rate(self):
        chip = Snnac(SnnacConfig(num_pes=2, words_per_bank=64, seed=13))
        baseline = chip.memory.fault_rate_at(0.5)
        chip.set_environment(EnvironmentalConditions(vmin_shift=0.02))
        shifted = chip.memory.fault_rate_at(0.5)
        assert shifted > baseline
        # returning to nominal restores the exact original rate: the mask
        # cache is keyed on the offset, so no stale masks survive
        chip.set_environment(EnvironmentalConditions())
        assert chip.memory.fault_rate_at(0.5) == baseline


class TestProcessCornerWiring:
    @pytest.mark.parametrize(
        "corner,sign",
        [(SLOW_CORNER, 1), (TYPICAL_CORNER, 0), (FAST_CORNER, -1)],
    )
    def test_corner_shifts_fault_rate(self, corner, sign):
        scenario = VariationScenario(name=corner.name, corner=corner)
        typical = Snnac(SnnacConfig(num_pes=2, words_per_bank=64, seed=13))
        skewed = Snnac(
            SnnacConfig(num_pes=2, words_per_bank=64, seed=13), scenario=scenario
        )
        rate_tt = typical.memory.fault_rate_at(0.5)
        rate_corner = skewed.memory.fault_rate_at(0.5)
        if sign > 0:
            assert rate_corner > rate_tt
        elif sign < 0:
            assert rate_corner < rate_tt
        else:
            assert rate_corner == rate_tt
        for bank in skewed.memory:
            assert bank.vmin_offset == pytest.approx(corner.vmin_shift)

    def test_corner_scales_leakage_not_dynamic(self):
        typical = Snnac(SnnacConfig(num_pes=2, words_per_bank=64, seed=13))
        slow = Snnac(
            SnnacConfig(num_pes=2, words_per_bank=64, seed=13),
            scenario=VariationScenario(name="ss", corner=SLOW_CORNER),
        )
        a = typical.energy_model.breakdown(NOMINAL_OPERATING_POINT)
        b = slow.energy_model.breakdown(NOMINAL_OPERATING_POINT)
        assert b.sram_leakage == pytest.approx(
            a.sram_leakage * SLOW_CORNER.leakage_scale
        )
        assert b.logic_leakage == pytest.approx(
            a.logic_leakage * SLOW_CORNER.leakage_scale
        )
        assert b.sram_dynamic == pytest.approx(a.sram_dynamic)
        assert b.logic_dynamic == pytest.approx(a.logic_dynamic)

    def test_with_leakage_scale_validation_and_identity(self):
        chip = Snnac(SnnacConfig(num_pes=2, words_per_bank=64, seed=13))
        model = chip.energy_model
        assert model.with_leakage_scale(1.0) is model
        with pytest.raises(ValueError):
            model.with_leakage_scale(0.0)
        # scaling returns an independent copy: the original is untouched
        scaled = model.with_leakage_scale(0.5)
        assert scaled is not model
        assert model.sram.leakage.nominal_power == pytest.approx(
            2.0 * scaled.sram.leakage.nominal_power
        )

    def test_corner_and_environment_offsets_compose(self):
        chip = Snnac(
            SnnacConfig(num_pes=2, words_per_bank=64, seed=13),
            scenario=VariationScenario(name="ss", corner=SLOW_CORNER),
        )
        chip.set_environment(EnvironmentalConditions(vmin_shift=0.01))
        for bank in chip.memory:
            assert bank.vmin_offset == pytest.approx(SLOW_CORNER.vmin_shift + 0.01)


class TestScenario:
    def test_iid_scenario_returns_base_model(self):
        base = EmpiricalVminModel()
        scenario = VariationScenario()
        assert scenario.variation_model(base) is base

    def test_correlated_scenario_wraps_base(self):
        scenario = VariationScenario(
            name="row", correlation=CorrelationSpec(row=0.4)
        )
        model = scenario.variation_model()
        assert isinstance(model, CorrelatedVminModel)
        assert model.row == 0.4

    def test_digest_distinguishes_scenarios(self):
        digests = {
            VariationScenario().digest(),
            VariationScenario(
                name="row", correlation=CorrelationSpec(row=0.4)
            ).digest(),
            VariationScenario(name="ss", corner=SLOW_CORNER).digest(),
        }
        assert len(digests) == 3

    def test_iid_scenario_chip_is_bit_identical_to_legacy(self):
        legacy = Snnac(SnnacConfig(num_pes=2, words_per_bank=64, seed=21))
        scenario = Snnac(
            SnnacConfig(num_pes=2, words_per_bank=64, seed=21),
            scenario=VariationScenario(),
        )
        for lb, sb in zip(legacy.memory, scenario.memory):
            np.testing.assert_array_equal(lb.cells.vmin_read, sb.cells.vmin_read)
            np.testing.assert_array_equal(
                lb.fault_map_at(0.5).stuck_mask, sb.fault_map_at(0.5).stuck_mask
            )


class TestCacheKeySeparation:
    """Identical geometry and seed, different scenarios → distinct cache
    identities at every layer that memoizes profile artifacts."""

    def _banks(self):
        iid = SramBank(64, 16, seed=17)
        correlated = SramBank(
            64,
            16,
            seed=17,
            scenario=VariationScenario(
                name="row", correlation=CorrelationSpec(row=0.4)
            ),
        )
        return iid, correlated

    def test_profile_cache_keys_differ(self):
        iid, correlated = self._banks()
        profiler = SramProfiler()
        key_a = cache_digest(MaticFlow._profile_cache_key(iid, 0.5, 25.0, profiler))
        key_b = cache_digest(
            MaticFlow._profile_cache_key(correlated, 0.5, 25.0, profiler)
        )
        assert key_a != key_b

    def test_offset_changes_cache_key_for_same_population(self):
        bank = SramBank(64, 16, seed=17)
        profiler = SramProfiler()
        before = cache_digest(MaticFlow._profile_cache_key(bank, 0.5, 25.0, profiler))
        bank.vmin_offset = 0.02
        after = cache_digest(MaticFlow._profile_cache_key(bank, 0.5, 25.0, profiler))
        assert before != after

    def test_mask_digests_differ(self):
        iid, correlated = self._banks()
        assert iid.mask_digest(0.5, 25.0) != correlated.mask_digest(0.5, 25.0)

    def test_artifact_cache_stores_separate_entries(self, tmp_path):
        iid, correlated = self._banks()
        cache = ArtifactCache(root=tmp_path)
        profiler = SramProfiler()
        builds = []
        for bank in (iid, correlated):
            key = MaticFlow._profile_cache_key(bank, 0.5, 25.0, profiler)
            cache.get_or_create(
                "fault-map-test", key, lambda b=bank: builds.append(b.name) or b.name
            )
        assert len(builds) == 2  # second bank was a miss, not a stale hit


class TestVariationScenariosDriver:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        from repro.experiments.engine import SweepRunner
        from repro.experiments.variation_scenarios import run_variation_scenarios

        cache = ArtifactCache(root=tmp_path_factory.mktemp("variation-cache"))
        return run_variation_scenarios(
            benchmarks=("inversek2j",),
            shapes=("iid", "region"),
            strengths=(0.5,),
            num_dies=4,
            num_pes=4,
            words_per_bank=256,
            num_samples=300,
            adaptive_epochs=8,
            seed=3,
            runner=SweepRunner(workers=1),
            cache=cache,
        )

    def test_grid_shape(self, result):
        assert [(p.shape, p.strength) for p in result.points] == [
            ("iid", 0.0),
            ("region", 0.5),
        ]
        assert len({p.scenario_digest for p in result.points}) == 2

    def test_correlation_shifts_measurables(self, result):
        iid, region = result.points
        assert region.row_autocorrelation > iid.row_autocorrelation
        assert region.vmin_std > iid.vmin_std

    def test_deployment_measured(self, result):
        for point in result.points:
            assert point.naive_error is not None
            assert point.adaptive_error is not None
            assert point.adaptive_error <= point.naive_error + 0.05
            assert point.stratified_regions >= point.margin_regions

    def test_rendering(self, result):
        text = result.to_experiment_result().to_text()
        assert "iid" in text and "region" in text

    def test_shard_merge_bit_identical(self, tmp_path):
        from repro.experiments.engine import ShardIncompleteError, ShardSpec, SweepRunner
        from repro.experiments.variation_scenarios import run_variation_scenarios

        store = ArtifactCache(root=tmp_path)
        kwargs = dict(
            benchmarks=("inversek2j",),
            shapes=("iid", "region", "mixed"),
            strengths=(0.4,),
            num_dies=3,
            num_pes=2,
            words_per_bank=64,
            measure_error=False,
            seed=5,
            cache=store,
        )
        reference = run_variation_scenarios(
            runner=SweepRunner(workers=1), **kwargs
        )
        with pytest.raises(ShardIncompleteError):
            run_variation_scenarios(
                runner=SweepRunner(
                    workers=1,
                    shard=ShardSpec(0, 2),
                    shard_store=store,
                    sweep_label="variation-shard-test",
                ),
                **kwargs,
            )
        merged = run_variation_scenarios(
            runner=SweepRunner(
                workers=1,
                shard=ShardSpec(1, 2),
                shard_store=store,
                sweep_label="variation-shard-test",
            ),
            **kwargs,
        )
        assert [vars(p) for p in merged.points] == [
            vars(p) for p in reference.points
        ]

    def test_skip_error_leaves_fields_none(self, tmp_path):
        from repro.experiments.engine import SweepRunner
        from repro.experiments.variation_scenarios import run_variation_scenarios

        result = run_variation_scenarios(
            benchmarks=("inversek2j",),
            shapes=("iid",),
            strengths=(),
            num_dies=2,
            num_pes=2,
            words_per_bank=64,
            measure_error=False,
            runner=SweepRunner(workers=1),
            cache=ArtifactCache(root=tmp_path),
        )
        (point,) = result.points
        assert point.naive_error is None
        assert point.adaptive_error is None


class TestFlowCanaryPlacement:
    def test_flow_threads_placement_to_selector(self):
        flow = MaticFlow(word_bits=16, canary_placement="stratified")
        assert flow.canary_placement == "stratified"
        default = MaticFlow(word_bits=16)
        assert default.canary_placement == "margin"
