"""Size accounting, clear/prune, and the repro.experiments.cache CLI."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.experiments.cache import (
    ArtifactCache,
    cache_digest,
    main,
    parse_age,
    parse_size,
)


@pytest.fixture(autouse=True)
def _no_ambient_budget(monkeypatch):
    """Host environments may export a cache budget; these tests must not
    inherit it (several assert the *absence* of eviction)."""
    monkeypatch.delenv("REPRO_CACHE_BUDGET", raising=False)


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(root=tmp_path / "cache")


def populate(cache: ArtifactCache) -> None:
    cache.put("trained-weights", {"run": 1}, [1, 2, 3])
    cache.put("trained-weights", {"run": 2}, [4, 5, 6])
    cache.put("fault-map", {"bank": 0}, {"stuck": True})


class TestDiskStats:
    def test_empty_cache(self, cache):
        stats = cache.disk_stats()
        assert stats["total_entries"] == 0
        assert stats["total_bytes"] == 0
        assert stats["kinds"] == {}

    def test_counts_entries_and_bytes_per_kind(self, cache):
        populate(cache)
        stats = cache.disk_stats()
        assert stats["kinds"]["trained-weights"]["entries"] == 2
        assert stats["kinds"]["fault-map"]["entries"] == 1
        assert stats["total_entries"] == 3
        assert stats["total_bytes"] == sum(
            entry["bytes"] for entry in stats["kinds"].values()
        )
        assert stats["total_bytes"] > 0

    def test_idempotent_store_keeps_one_entry(self, cache):
        cache.put("trained-weights", {"run": 1}, [1])
        cache.put("trained-weights", {"run": 1}, [1])
        assert cache.disk_stats()["total_entries"] == 1


class TestClearAndPrune:
    def test_clear_all(self, cache):
        populate(cache)
        removed, freed = cache.clear()
        assert removed == 3
        assert freed > 0
        assert cache.disk_stats()["total_entries"] == 0
        assert cache.get("trained-weights", {"run": 1}) is None

    def test_clear_one_kind(self, cache):
        populate(cache)
        removed, _ = cache.clear(kind="fault-map")
        assert removed == 1
        assert cache.get("fault-map", {"bank": 0}) is None
        assert cache.get("trained-weights", {"run": 1}) == [1, 2, 3]

    def test_prune_by_age(self, cache):
        populate(cache)
        old = time.time() - 3600
        target = cache._path("trained-weights", next(
            path.stem for _, path in cache._artifact_files("trained-weights")
        ))
        os.utime(target, (old, old))
        removed, freed = cache.prune(older_than_seconds=600)
        assert removed == 1
        assert freed > 0
        assert cache.disk_stats()["total_entries"] == 2

    def test_prune_keeps_recent(self, cache):
        populate(cache)
        removed, _ = cache.prune(older_than_seconds=3600)
        assert removed == 0
        assert cache.disk_stats()["total_entries"] == 3

    @pytest.mark.parametrize("kind", ["..", "../../etc", "/tmp", "a/b", ""])
    def test_kind_must_be_a_bare_name(self, cache, kind):
        """A kind with path separators must never escape the cache root."""
        populate(cache)
        with pytest.raises(ValueError):
            cache.clear(kind=kind)
        with pytest.raises(ValueError):
            cache.prune(older_than_seconds=0, kind=kind)
        assert cache.disk_stats()["total_entries"] == 3

    def test_kind_scoped_maintenance_keeps_other_kinds_in_memory(self, cache):
        """Evicting one kind must not flush unrelated kinds from the
        in-process layer."""
        populate(cache)
        cache.clear(kind="fault-map")
        # delete the trained-weights files behind the memory layer's back:
        # a memory hit is then the only way get() can still answer
        for _, path in list(cache._artifact_files("trained-weights")):
            path.unlink()
        assert cache.get("trained-weights", {"run": 1}) == [1, 2, 3]
        assert cache.get("fault-map", {"bank": 0}) is None  # evicted everywhere

    def test_disk_hit_refreshes_mtime_protecting_from_prune(self, cache):
        """An artifact recalled from disk counts as recently used."""
        cache.put("trained-weights", {"run": 1}, [1])
        for _, path in cache._artifact_files("trained-weights"):
            old = time.time() - 7200
            os.utime(path, (old, old))
        reopened = ArtifactCache(root=cache.root)  # cold memory layer
        assert reopened.get("trained-weights", {"run": 1}) == [1]
        removed, _ = reopened.prune(older_than_seconds=3600)
        assert removed == 0

    def test_prune_rejects_negative_age(self, cache):
        with pytest.raises(ValueError):
            cache.prune(older_than_seconds=-1)

    def test_prune_rejects_non_finite_age(self, cache):
        """NaN must error, not compare False against every mtime and wipe
        the whole store."""
        populate(cache)
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ValueError):
                cache.prune(older_than_seconds=bad)
        assert cache.disk_stats()["total_entries"] == 3


class TestOrphanedTempFiles:
    """Writers killed mid-put leave *.tmp files; maintenance must see them."""

    @staticmethod
    def orphan(cache, age_seconds=0.0):
        kind_dir = cache.root / "trained-weights"
        kind_dir.mkdir(parents=True, exist_ok=True)
        path = kind_dir / "deadbeef.tmp"
        path.write_bytes(b"x" * 100)
        if age_seconds:
            old = time.time() - age_seconds
            os.utime(path, (old, old))
        return path

    def test_disk_stats_reports_temp_bytes(self, cache):
        populate(cache)
        self.orphan(cache)
        stats = cache.disk_stats()
        assert stats["temp_files"] == {"entries": 1, "bytes": 100}
        # the totals reconcile: per-kind + temp files = totals
        assert stats["total_entries"] == 4
        assert stats["total_bytes"] == 100 + sum(
            entry["bytes"] for entry in stats["kinds"].values()
        )

    def test_clear_sweeps_temp_files(self, cache):
        populate(cache)
        path = self.orphan(cache)
        removed, _ = cache.clear()
        assert removed == 4
        assert not path.exists()

    def test_prune_sweeps_old_temp_files_only(self, cache):
        stale = self.orphan(cache, age_seconds=7200)
        fresh = stale.with_name("inflight.tmp")
        fresh.write_bytes(b"y" * 10)  # a writer still in flight
        removed, freed = cache.prune(older_than_seconds=3600)
        assert (removed, freed) == (1, 100)
        assert not stale.exists() and fresh.exists()


class TestVerifyCorruption:
    """Torn or truncated artifacts must degrade to misses, never crash —
    and ``verify``/``prune --corrupt`` must find and evict them."""

    @staticmethod
    def corrupt_kind(cache, kind="trained-weights"):
        paths = [path for _, path in cache._artifact_files(kind)]
        for path in paths:
            path.write_bytes(b"\x80\x05truncated mid-write")
        return paths

    def test_corrupt_artifact_degrades_to_miss(self, cache):
        populate(cache)
        self.corrupt_kind(cache)
        reopened = ArtifactCache(root=cache.root)  # cold memory layer
        assert reopened.get("trained-weights", {"run": 1}) is None
        assert reopened.get("fault-map", {"bank": 0}) == {"stuck": True}

    def test_verify_reports_without_removing(self, cache):
        populate(cache)
        paths = self.corrupt_kind(cache)
        report = cache.verify()
        assert len(report) == 2
        assert {entry["kind"] for entry in report} == {"trained-weights"}
        assert all(entry["error"] for entry in report)
        assert all(path.exists() for path in paths)

    def test_verify_remove_evicts_disk_and_memory(self, cache):
        populate(cache)
        paths = self.corrupt_kind(cache)
        removed = cache.verify(remove=True)
        assert len(removed) == 2
        assert not any(path.exists() for path in paths)
        # the memory layer must not keep answering for the evicted entries
        assert cache.get("trained-weights", {"run": 1}) is None
        assert cache.disk_stats()["total_entries"] == 1

    def test_verify_kind_scoped(self, cache):
        populate(cache)
        self.corrupt_kind(cache, "trained-weights")
        assert cache.verify(kind="fault-map") == []
        assert len(cache.verify(kind="trained-weights")) == 2

    def test_cli_verify_command(self, cache, capsys):
        populate(cache)
        self.corrupt_kind(cache)
        assert main(["--root", str(cache.root), "verify"]) == 0
        out = capsys.readouterr().out
        assert "corrupt [trained-weights]" in out
        assert "found 2 corrupt entries" in out
        assert cache.disk_stats()["total_entries"] == 3  # report only

    def test_cli_verify_remove(self, cache, capsys):
        populate(cache)
        self.corrupt_kind(cache)
        assert main(["--root", str(cache.root), "verify", "--remove"]) == 0
        assert "removed 2 corrupt entries" in capsys.readouterr().out
        assert cache.disk_stats()["total_entries"] == 1

    def test_cli_verify_json(self, cache, capsys):
        """--json emits one machine-readable object (what CI asserts on)."""
        populate(cache)
        self.corrupt_kind(cache)
        assert main(["--root", str(cache.root), "verify", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["root"] == str(cache.root)
        assert report["count"] == 2
        assert report["removed"] is False
        assert {entry["kind"] for entry in report["corrupt"]} == {"trained-weights"}
        assert all(entry["path"] and entry["error"] for entry in report["corrupt"])

    def test_cli_verify_json_clean_cache(self, cache, capsys):
        populate(cache)
        assert main(["--root", str(cache.root), "verify", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["count"] == 0 and report["corrupt"] == []

    def test_cli_verify_json_remove(self, cache, capsys):
        populate(cache)
        self.corrupt_kind(cache)
        assert main(["--root", str(cache.root), "verify", "--json", "--remove"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["count"] == 2 and report["removed"] is True
        assert cache.disk_stats()["total_entries"] == 1

    def test_cli_prune_corrupt_ignores_age(self, cache, capsys):
        """A fresh-but-corrupt entry survives the age pass; --corrupt gets it."""
        populate(cache)
        self.corrupt_kind(cache)
        assert main(
            ["--root", str(cache.root), "prune", "--older-than", "1h", "--corrupt"]
        ) == 0
        out = capsys.readouterr().out
        assert "pruned 0 entries" in out
        assert "removed 2 corrupt entries" in out
        assert cache.disk_stats()["total_entries"] == 1


class TestParseAge:
    @pytest.mark.parametrize(
        "text, seconds",
        [("3600", 3600.0), ("45s", 45.0), ("30m", 1800.0), ("12h", 43200.0),
         ("7d", 604800.0), ("2w", 1209600.0), ("1.5h", 5400.0)],
    )
    def test_valid(self, text, seconds):
        assert parse_age(text) == seconds

    @pytest.mark.parametrize("text", ["", "abc", "-5s", "5y", "nan", "inf", "nand"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_age(text)


class TestCli:
    def test_stats_command(self, cache, capsys):
        populate(cache)
        assert main(["--root", str(cache.root), "stats"]) == 0
        out = capsys.readouterr().out
        assert "trained-weights: 2 entries" in out
        assert "total: 3 entries" in out

    def test_clear_command(self, cache, capsys):
        populate(cache)
        assert main(["--root", str(cache.root), "clear"]) == 0
        assert "removed 3 entries" in capsys.readouterr().out
        assert cache.disk_stats()["total_entries"] == 0

    def test_prune_command(self, cache, capsys):
        populate(cache)
        for _, path in cache._artifact_files("fault-map"):
            old = time.time() - 7200
            os.utime(path, (old, old))
        assert main(["--root", str(cache.root), "prune", "--older-than", "1h"]) == 0
        assert "pruned 1 entries" in capsys.readouterr().out
        assert cache.disk_stats()["total_entries"] == 2

    def test_runs_as_module(self, cache):
        import subprocess
        import sys

        populate(cache)
        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments.cache",
             "--root", str(cache.root), "stats"],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.join(os.path.dirname(__file__), ".."),
        )
        assert result.returncode == 0
        assert "total: 3 entries" in result.stdout


class TestSizeBudgetEviction:
    """LRU size-budget eviction (opportunistic on put + explicit sweep)."""

    def _sizes(self, cache):
        return cache.disk_stats()["total_bytes"]

    def test_evict_to_budget_removes_oldest_first(self, cache):
        for run in range(6):
            cache.put("trained-weights", {"run": run}, list(range(50)))
            path = cache._path("trained-weights", cache_digest({"run": run}))
            os.utime(path, (time.time() - 1000 + run,) * 2)
        total = self._sizes(cache)
        per_entry = total // 6
        removed, freed = cache.evict_to_budget(total - per_entry)
        assert removed >= 1 and freed > 0
        assert self._sizes(cache) <= total - per_entry
        # the oldest entries went; the newest survives
        assert cache.get("trained-weights", {"run": 0}) is None
        assert cache.get("trained-weights", {"run": 5}) is not None

    def test_evict_noop_within_budget(self, cache):
        populate(cache)
        assert cache.evict_to_budget(10**9) == (0, 0)
        assert cache.get("trained-weights", {"run": 1}) is not None

    def test_evict_requires_a_budget(self, cache):
        with pytest.raises(ValueError, match="budget"):
            cache.evict_to_budget()

    def test_evict_rejects_negative_budget(self, cache):
        with pytest.raises(ValueError):
            cache.evict_to_budget(-1)

    def test_evict_sweeps_orphaned_temp_files(self, cache):
        populate(cache)
        orphan = cache.root / "trained-weights" / "orphan.tmp"
        orphan.write_bytes(b"x" * 4096)
        os.utime(orphan, (time.time() - 1000, time.time() - 1000))
        cache.evict_to_budget(self._sizes(cache) - 4096)
        assert not orphan.exists()

    def test_opportunistic_eviction_on_put(self, tmp_path):
        # each artifact pickles to ~1 KiB, so the 2000-byte budget is blown
        # after the second store and every sweep must actually evict
        cache = ArtifactCache(
            root=tmp_path / "budgeted",
            size_budget_bytes=2000,
            eviction_check_interval=1,
        )
        for run in range(12):
            assert cache.put("trained-weights", {"run": run}, b"x" * 1024)
            time.sleep(0.01)
        stats = cache.disk_stats()
        # the store stays near the budget instead of the ~12 KiB it wrote,
        # and the most recent artifact always survives its own sweep
        assert stats["total_entries"] < 12
        assert stats["total_bytes"] <= 2000 + 1100  # budget + the protected put
        assert cache.get("trained-weights", {"run": 0}) is None
        assert cache.get("trained-weights", {"run": 11}) is not None

    def test_eviction_interval_batches_the_sweeps(self, tmp_path):
        cache = ArtifactCache(
            root=tmp_path / "batched",
            size_budget_bytes=2000,
            eviction_check_interval=4,
        )
        for run in range(3):
            cache.put("trained-weights", {"run": run}, b"x" * 1024)
        # three stores exceed the budget but the 4th-store sweep hasn't run
        assert cache.disk_stats()["total_entries"] == 3
        cache.put("trained-weights", {"run": 3}, b"x" * 1024)
        assert cache.disk_stats()["total_entries"] < 4

    def test_no_budget_means_no_eviction(self, cache):
        for run in range(20):
            cache.put("trained-weights", {"run": run}, b"x" * 1024)
        assert cache.disk_stats()["total_entries"] == 20

    def test_env_budget_is_honoured(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BUDGET", "2K")
        cache = ArtifactCache(root=tmp_path / "envbudget", eviction_check_interval=1)
        for run in range(8):
            cache.put("trained-weights", {"run": run}, b"x" * 1024)
            time.sleep(0.01)
        stats = cache.disk_stats()
        assert stats["total_entries"] < 8  # eviction really ran
        assert stats["total_bytes"] <= 2048 + 1100

    def test_malformed_env_budget_warns_and_disables_eviction(
        self, tmp_path, monkeypatch
    ):
        import repro.experiments.cache as cache_module

        monkeypatch.setenv("REPRO_CACHE_BUDGET", "512 megs")
        monkeypatch.setattr(cache_module, "_WARNED_BAD_BUDGET", None)
        cache = ArtifactCache(root=tmp_path / "badbudget", eviction_check_interval=1)
        with pytest.warns(RuntimeWarning, match="REPRO_CACHE_BUDGET"):
            for run in range(4):
                cache.put("trained-weights", {"run": run}, b"x" * 1024)
        assert cache.disk_stats()["total_entries"] == 4  # nothing evicted

    def test_memory_layer_hits_keep_artifacts_hot(self, tmp_path):
        # an artifact recalled only through the in-process memory layer must
        # still look recently-used to the LRU sweep (mtime refresh on hit)
        cache = ArtifactCache(root=tmp_path / "hot")
        cache.put("trained-weights", {"run": "hot"}, b"h" * 512)
        hot_path = cache._path("trained-weights", cache_digest({"run": "hot"}))
        os.utime(hot_path, (time.time() - 5000,) * 2)  # stale on disk...
        assert cache.get("trained-weights", {"run": "hot"}) is not None  # ...hot hit
        cache.put("trained-weights", {"run": "cold"}, b"c" * 512)
        cold_path = cache._path("trained-weights", cache_digest({"run": "cold"}))
        os.utime(cold_path, (time.time() - 1000,) * 2)
        cache.clear_memory()
        cache.evict_to_budget(cache.disk_stats()["total_bytes"] - 256)
        assert hot_path.exists()  # the memory-hit refresh saved it
        assert not cold_path.exists()

    def test_kind_scoped_eviction(self, cache):
        populate(cache)
        old = time.time() - 1000
        for _, path in cache._artifact_files("fault-map"):
            os.utime(path, (old, old))
        cache.evict_to_budget(0, kind="fault-map")
        assert cache.get("fault-map", {"bank": 0}) is None
        assert cache.get("trained-weights", {"run": 1}) is not None


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [("100", 100), ("1k", 1024), ("512K", 512 * 1024), ("2MB", 2 * 1024**2),
         ("1.5g", int(1.5 * 1024**3))],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["", "x", "-5", "1q", "nan"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_size(text)


class TestEvictCli:
    def test_evict_command(self, cache, capsys):
        populate(cache)
        old = time.time() - 1000
        for _, path in cache._artifact_files():
            os.utime(path, (old, old))
        assert main(["--root", str(cache.root), "evict", "--budget", "0"]) == 0
        out = capsys.readouterr().out
        assert "evicted" in out
        assert cache.disk_stats()["total_entries"] == 0

    def test_evict_requires_budget_or_env(self, cache, capsys):
        with pytest.raises(SystemExit):
            main(["--root", str(cache.root), "evict"])

    def test_evict_rejects_bad_budget(self, cache):
        with pytest.raises(SystemExit):
            main(["--root", str(cache.root), "evict", "--budget", "wat"])
