"""Smoke tests for the example scripts.

The examples are user-facing documentation; these tests ensure they at least
import cleanly and expose a ``main`` entry point, and run the cheapest one
end-to-end so a regression in the public API surfaces immediately.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_at_least_three_examples_exist(self):
        assert len(EXAMPLE_FILES) >= 3
        assert (EXAMPLES_DIR / "quickstart.py").exists()

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_examples_import_and_define_main(self, path):
        module = _load(path)
        assert callable(getattr(module, "main", None))

    def test_quickstart_runs(self, capsys):
        module = _load(EXAMPLES_DIR / "quickstart.py")
        module.main()
        output = capsys.readouterr().out
        assert "memory-adaptive" in output
        assert "%" in output
