"""Unit and integration tests for the PE, systolic ring, and NPU."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import (
    ActivationFunctionUnit,
    MicrocodeCompiler,
    Npu,
    ProcessingElement,
    SystolicRing,
)
from repro.nn import Network
from repro.quant import FixedPointFormat, WeightQuantizer
from repro.sram import SramBank, WeightMemorySystem


@pytest.fixture()
def memory():
    return WeightMemorySystem.build(4, 128, 16, seed=13)


@pytest.fixture()
def quantizer():
    return WeightQuantizer(total_bits=16, frac_bits=13)


class TestProcessingElement:
    def test_mac_batch_matches_numpy(self):
        bank = SramBank(16, 16, seed=0)
        pe = ProcessingElement(0, bank, data_format=FixedPointFormat(16, 12))
        rng = np.random.default_rng(0)
        inputs = rng.random((5, 8))
        weights = rng.normal(size=8)
        result = pe.mac_batch(inputs, weights, bias=0.25)
        expected = pe.data_format.quantize(inputs) @ weights + 0.25
        np.testing.assert_allclose(result, expected)
        assert pe.mac_count == 5 * 8

    def test_mac_batch_fan_in_mismatch(self):
        pe = ProcessingElement(0, SramBank(8, 16, seed=0))
        with pytest.raises(ValueError):
            pe.mac_batch(np.zeros((2, 4)), np.zeros(5), 0.0)

    def test_ring_mac_counts_match_hosted_weight_words(self, memory, quantizer):
        """The ring credits each PE's mac_count for the weight words it
        hosts — summed over PEs that is the layer-wise MAC total."""
        network = Network("10-12-3", seed=3)
        npu = Npu(memory)
        npu.deploy(network, quantizer)
        npu.run(np.zeros((4, 10)), sram_voltage=0.9)
        total = sum(pe.mac_count for pe in npu.ring.pes)
        assert total == npu.program.total_macs_per_inference * 4

    def test_fetch_neuron_parameters_decodes_words(self):
        bank = SramBank(16, 16, seed=0)
        fmt = FixedPointFormat(16, 13)
        pe = ProcessingElement(1, bank)
        weights = np.array([0.5, -0.25, 1.0])
        bank.write(np.arange(4), np.concatenate([
            fmt.float_to_word(np.array([0.125])), fmt.float_to_word(weights)
        ]))
        decoded_weights, decoded_bias = pe.fetch_neuron_parameters(
            0, 3, fmt, fmt, voltage=0.9
        )
        np.testing.assert_allclose(decoded_weights, weights)
        assert decoded_bias == pytest.approx(0.125)

    def test_reset_counters(self):
        pe = ProcessingElement(0, SramBank(8, 16, seed=0))
        pe.mac_batch(np.zeros((1, 2)), np.zeros(2), 0.0)
        pe.reset_counters()
        assert pe.mac_count == 0

    def test_invalid_index(self):
        with pytest.raises(ValueError):
            ProcessingElement(-1, SramBank(8, 16, seed=0))


class TestSystolicRingAndNpu:
    def test_npu_matches_software_network_at_nominal_voltage(self, memory, quantizer):
        """At nominal voltage the accelerator must agree with a software
        evaluation of the quantized network to within datapath quantization."""
        network = Network("10-12-3", hidden_activation="sigmoid",
                          output_activation="sigmoid", seed=3)
        npu = Npu(memory)
        npu.deploy(network, quantizer)
        rng = np.random.default_rng(1)
        x = rng.random((20, 10))
        hardware, stats = npu.run(x, sram_voltage=0.9)
        software = network.predict(x)
        assert hardware.shape == software.shape
        assert np.max(np.abs(hardware - software)) < 0.03
        assert stats.batch_size == 20
        assert stats.cycles == npu.program.total_cycles_per_inference
        assert stats.macs == npu.program.total_macs_per_inference * 20

    def test_run_requires_deploy(self, memory):
        npu = Npu(memory)
        with pytest.raises(RuntimeError):
            npu.run(np.zeros((1, 4)))

    def test_low_voltage_changes_outputs(self, memory, quantizer):
        network = Network("10-12-3", seed=3)
        npu = Npu(memory)
        npu.deploy(network, quantizer)
        x = np.random.default_rng(2).random((10, 10))
        nominal = npu.predict(x, sram_voltage=0.9)
        npu.refresh_weights()
        overscaled = npu.predict(x, sram_voltage=0.42)
        assert not np.allclose(nominal, overscaled)

    def test_refresh_weights_restores_behaviour(self, memory, quantizer):
        network = Network("10-12-3", seed=3)
        npu = Npu(memory)
        npu.deploy(network, quantizer)
        x = np.random.default_rng(2).random((10, 10))
        nominal = npu.predict(x, sram_voltage=0.9)
        npu.predict(x, sram_voltage=0.42)  # corrupts storage
        npu.refresh_weights()
        restored = npu.predict(x, sram_voltage=0.9)
        np.testing.assert_allclose(nominal, restored)

    def test_refresh_requires_deploy(self, memory):
        with pytest.raises(RuntimeError):
            Npu(memory).refresh_weights()

    def test_layer_stats_structure(self, memory, quantizer):
        network = Network("10-12-3", seed=3)
        npu = Npu(memory)
        npu.deploy(network, quantizer)
        _, stats = npu.run(np.zeros((4, 10)))
        assert len(stats.layer_stats) == 2
        assert stats.layer_stats[0].sram_reads > 0
        assert stats.cycles_per_inference == pytest.approx(stats.cycles / 4)

    def test_ring_rejects_wrong_input_width(self, memory, quantizer):
        network = Network("10-12-3", seed=3)
        compiler = MicrocodeCompiler(num_pes=len(memory), words_per_bank=128)
        program = compiler.compile(network, quantizer)
        program.placement.store(memory, quantizer.quantize_network(network))
        ring = SystolicRing(memory)
        with pytest.raises(ValueError):
            ring.compute_layer(np.zeros((2, 7)), program.layers[0], program.placement, 0.9)

    def test_ring_counts_passes(self, memory, quantizer):
        network = Network("6-10-2", seed=1)
        compiler = MicrocodeCompiler(num_pes=len(memory), words_per_bank=128)
        program = compiler.compile(network, quantizer)
        program.placement.store(memory, quantizer.quantize_network(network))
        ring = SystolicRing(memory)
        _, stats = ring.compute_layer(
            np.zeros((3, 6)), program.layers[0], program.placement, 0.9
        )
        assert stats.passes == int(np.ceil(10 / len(memory)))
        assert stats.batch_size == 3

    def test_deploy_quantized_reuses_program(self, memory, quantizer):
        network = Network("10-12-3", seed=3)
        npu = Npu(memory)
        program = npu.deploy(network, quantizer)
        quantized = quantizer.quantize_network(network)
        other = Npu(memory)
        other.deploy_quantized(program, quantized)
        x = np.random.default_rng(0).random((5, 10))
        np.testing.assert_allclose(other.predict(x), npu.predict(x))

    def test_relu_network_on_npu(self, memory, quantizer):
        network = Network(
            "10-12-3", hidden_activation="relu", output_activation="identity", seed=5
        )
        npu = Npu(memory)
        npu.deploy(network, quantizer)
        x = np.random.default_rng(3).random((8, 10))
        hardware = npu.predict(x, sram_voltage=0.9)
        software = network.predict(x)
        assert np.max(np.abs(hardware - software)) < 0.05


class TestMacAccounting:
    """sum(pe.mac_count) must equal stats.macs at every geometry.

    The gather plan credits each PE for the weight words it hosts (bias
    words excluded); summed over the ring that must reconcile exactly with
    ``LayerExecutionStats.macs = in_features * out_features * batch`` —
    including when capacity-constrained banks force spilled, multi-segment
    placements.
    """

    @pytest.mark.parametrize("words_per_bank", [128, 45, 43])
    def test_pe_mac_counts_reconcile_with_stats(self, quantizer, words_per_bank):
        memory = WeightMemorySystem.build(4, words_per_bank, 16, seed=13)
        network = Network("10-12-3", seed=3)
        npu = Npu(memory)
        npu.deploy(network, quantizer)
        if words_per_bank < 128:
            assert npu.program.placement.spilled_neurons > 0  # spill actually forced
        for batch in (1, 4):
            npu.ring.reset_counters()
            _, stats = npu.run(np.zeros((batch, 10)), sram_voltage=0.9)
            assert sum(pe.mac_count for pe in npu.ring.pes) == stats.macs
            assert stats.macs == npu.program.total_macs_per_inference * batch

    def test_plan_weight_words_cover_every_mac_operand(self, quantizer):
        memory = WeightMemorySystem.build(4, 43, 16, seed=13)
        network = Network("10-12-3", seed=3)
        npu = Npu(memory)
        npu.deploy(network, quantizer)
        placement = npu.program.placement
        for index, layer in enumerate(placement.layers):
            plan = placement.gather_plan(index)
            assert sum(plan.weight_words) == layer.in_features * layer.out_features
            hosted = sum(a.size for a in plan.addresses)
            assert hosted == (layer.in_features + 1) * layer.out_features


class TestRunSweep:
    VOLTAGES = [0.90, 0.53, 0.50, 0.46, 0.90, 0.50]  # deliberate duplicates

    def _deployed(self, quantizer, seed=13):
        memory = WeightMemorySystem.build(4, 128, 16, seed=seed)
        npu = Npu(memory)
        npu.deploy(Network("10-12-3", seed=3), quantizer)
        return npu

    def test_run_sweep_matches_sequential_refreshed_runs(self, quantizer):
        x = np.random.default_rng(1).random((16, 10))
        reference = self._deployed(quantizer)
        expected = []
        for voltage in self.VOLTAGES:
            reference.refresh_weights()
            expected.append(reference.run(x, sram_voltage=voltage))
        swept = self._deployed(quantizer).run_sweep(x, self.VOLTAGES)
        assert len(swept) == len(self.VOLTAGES)
        for (out_a, stats_a), (out_b, stats_b) in zip(expected, swept):
            np.testing.assert_array_equal(out_a, out_b)
            assert (stats_a.cycles, stats_a.macs, stats_a.sram_reads) == (
                stats_b.cycles,
                stats_b.macs,
                stats_b.sram_reads,
            )

    def test_run_sweep_without_refresh_preserves_order_and_persistence(self, quantizer):
        x = np.random.default_rng(1).random((8, 10))
        voltages = [0.46, 0.90, 0.46]
        reference = self._deployed(quantizer)
        expected = [reference.run(x, sram_voltage=v)[0] for v in voltages]
        swept = self._deployed(quantizer).run_sweep(x, voltages, refresh=False)
        for out_a, (out_b, _) in zip(expected, swept):
            np.testing.assert_array_equal(out_a, out_b)
        # corruption from the 0.46 V point persisted into the 0.90 V one
        np.testing.assert_array_equal(expected[0], expected[2])

    def test_run_sweep_requires_deploy(self, memory):
        with pytest.raises(RuntimeError):
            Npu(memory).run_sweep(np.zeros((1, 4)), [0.9])

    def test_decode_memo_reuses_identical_mask_groups(self, quantizer):
        """Nominal-voltage grid points share one decoded weight image."""
        npu = self._deployed(quantizer)
        x = np.random.default_rng(2).random((4, 10))
        npu.run_sweep(x, [0.90, 0.88, 0.86])  # all fault-free, one group
        layers = len(npu.program.layers)
        assert sum(len(m.by_digest) for m in npu._decode_memo.values()) == layers

    def test_decode_memo_does_not_leak_across_deploys(self, quantizer):
        npu = self._deployed(quantizer)
        x = np.random.default_rng(2).random((4, 10))
        first = npu.predict(x, sram_voltage=0.9)
        other = Network("10-12-3", seed=9)
        npu.deploy(other, quantizer)
        redeployed = npu.predict(x, sram_voltage=0.9)
        assert not np.array_equal(first, redeployed)
        # memo rebuilt from the new words, and a fresh NPU agrees bit-for-bit
        fresh_memory = WeightMemorySystem.build(4, 128, 16, seed=13)
        fresh = Npu(fresh_memory)
        fresh.deploy(other, quantizer)
        np.testing.assert_array_equal(redeployed, fresh.predict(x, sram_voltage=0.9))

    def test_memoized_run_matches_unmemoized_ring(self, quantizer):
        """The epoch/digest memo must never change outputs — compare a full
        corrupting run against the decoder-free ring path on a twin chip."""
        from repro.accelerator.systolic import SystolicRing

        x = np.random.default_rng(5).random((6, 10))
        npu = self._deployed(quantizer)
        twin = self._deployed(quantizer)
        for voltage in (0.9, 0.47, 0.47, 0.9):
            out_memo, _ = npu.run(x, sram_voltage=voltage)
            activations = twin.data_format.quantize(np.asarray(x, dtype=float))
            ring = twin.ring
            for layer_program in twin.program.layers:
                pre, _ = ring.compute_layer(
                    activations,
                    layer_program,
                    twin.program.placement,
                    voltage=voltage,
                )
                activations = twin.afu.apply(layer_program.activation, pre)
                activations = twin.data_format.quantize(activations)
            np.testing.assert_array_equal(out_memo, activations)
