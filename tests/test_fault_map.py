"""Unit and property-based tests for repro.sram.fault_map."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sram import BitFault, FaultMap


class TestBitFault:
    def test_valid_construction(self):
        fault = BitFault(3, 7, 1)
        assert (fault.address, fault.bit, fault.stuck_value) == (3, 7, 1)

    @pytest.mark.parametrize("kwargs", [
        {"address": -1, "bit": 0, "stuck_value": 0},
        {"address": 0, "bit": -2, "stuck_value": 0},
        {"address": 0, "bit": 0, "stuck_value": 2},
    ])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ValueError):
            BitFault(**kwargs)


class TestFaultMap:
    def test_empty_map(self):
        fm = FaultMap(8, 16)
        assert fm.num_faults == 0
        assert fm.fault_rate == 0.0
        and_masks, or_masks = fm.masks()
        assert np.all(and_masks == 0xFFFF)
        assert np.all(or_masks == 0)

    def test_add_and_query(self):
        fm = FaultMap(8, 16)
        fm.add(BitFault(2, 5, 1))
        fm.add(BitFault(2, 6, 0))
        assert fm.num_faults == 2
        assert (2, 5) in fm
        assert (3, 5) not in fm
        assert len(fm.faults_at(2)) == 2
        np.testing.assert_array_equal(fm.faulty_addresses, [2])

    def test_add_out_of_range(self):
        fm = FaultMap(8, 16)
        with pytest.raises(ValueError):
            fm.add(BitFault(8, 0, 1))
        with pytest.raises(ValueError):
            fm.add(BitFault(0, 16, 1))

    def test_duplicate_add_overwrites(self):
        fm = FaultMap(4, 8)
        fm.add(BitFault(1, 3, 0))
        fm.add(BitFault(1, 3, 1))
        assert fm.num_faults == 1
        assert fm.faults[0].stuck_value == 1

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            FaultMap(0, 16)
        with pytest.raises(ValueError):
            FaultMap(8, 65)

    def test_masks_stuck_at_one(self):
        fm = FaultMap(2, 8, [BitFault(0, 3, 1)])
        and_masks, or_masks = fm.masks()
        assert or_masks[0] == 0b1000
        assert and_masks[0] == 0xFF

    def test_masks_stuck_at_zero(self):
        fm = FaultMap(2, 8, [BitFault(1, 2, 0)])
        and_masks, or_masks = fm.masks()
        assert and_masks[1] == 0xFF ^ 0b100
        assert or_masks[1] == 0

    def test_apply_corrupts_only_faulty_bits(self):
        fm = FaultMap(3, 8, [BitFault(0, 0, 1), BitFault(2, 7, 0)])
        words = np.array([0x00, 0x55, 0xFF], dtype=np.uint64)
        corrupted = fm.apply(words)
        assert corrupted[0] == 0x01
        assert corrupted[1] == 0x55  # untouched
        assert corrupted[2] == 0x7F

    def test_apply_wrong_length(self):
        fm = FaultMap(3, 8)
        with pytest.raises(ValueError):
            fm.apply(np.zeros(4, dtype=np.uint64))

    def test_merge(self):
        a = FaultMap(4, 8, [BitFault(0, 0, 1)])
        b = FaultMap(4, 8, [BitFault(1, 1, 0), BitFault(0, 0, 0)])
        merged = a.merge(b)
        assert merged.num_faults == 2
        # later map wins on conflicts
        assert merged.faults_at(0)[0].stuck_value == 0
        # originals untouched
        assert a.faults_at(0)[0].stuck_value == 1

    def test_merge_geometry_mismatch(self):
        with pytest.raises(ValueError):
            FaultMap(4, 8).merge(FaultMap(4, 16))

    def test_equality(self):
        a = FaultMap(4, 8, [BitFault(0, 0, 1)])
        b = FaultMap(4, 8, [BitFault(0, 0, 1)])
        c = FaultMap(4, 8, [BitFault(0, 0, 0)])
        assert a == b
        assert a != c

    def test_from_arrays(self):
        stuck = np.zeros((4, 8), dtype=bool)
        values = np.zeros((4, 8), dtype=int)
        stuck[1, 2] = True
        values[1, 2] = 1
        fm = FaultMap.from_arrays(stuck, values)
        assert fm.num_faults == 1
        assert fm.faults[0] == BitFault(1, 2, 1)

    def test_random_rate(self):
        fm = FaultMap.random(256, 16, fault_rate=0.1, rng=0)
        assert fm.fault_rate == pytest.approx(0.1, abs=0.02)

    def test_random_zero_and_full(self):
        assert FaultMap.random(32, 8, 0.0, rng=0).num_faults == 0
        assert FaultMap.random(32, 8, 1.0, rng=0).num_faults == 32 * 8

    def test_random_polarity_bias(self):
        fm = FaultMap.random(256, 16, 0.2, rng=1, stuck_one_probability=1.0)
        assert all(fault.stuck_value == 1 for fault in fm.faults)

    def test_random_invalid_rate(self):
        with pytest.raises(ValueError):
            FaultMap.random(8, 8, 1.5)


class TestArrayBackedEquivalence:
    """The array-backed FaultMap must be indistinguishable from the original
    ``dict[(address, bit)] -> value`` implementation."""

    @staticmethod
    def _reference_masks(num_words, word_bits, fault_items):
        """The pre-vectorization per-fault mask loop, verbatim."""
        full = (1 << word_bits) - 1
        and_masks = np.full(num_words, full, dtype=np.uint64)
        or_masks = np.zeros(num_words, dtype=np.uint64)
        for (address, bit), value in fault_items.items():
            if value == 0:
                and_masks[address] &= np.uint64(~(1 << bit) & full)
            else:
                or_masks[address] |= np.uint64(1 << bit)
        return and_masks, or_masks

    @settings(max_examples=60, deadline=None)
    @given(
        entries=st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 7), st.integers(0, 1)),
            max_size=40,
        ),
    )
    def test_add_matches_dict_semantics(self, entries):
        fm = FaultMap(16, 8)
        reference: dict[tuple[int, int], int] = {}
        for address, bit, value in entries:
            fm.add(BitFault(address, bit, value))
            reference[(address, bit)] = value
        assert fm.num_faults == len(reference)
        assert len(fm) == len(reference)
        assert [(f.address, f.bit, f.stuck_value) for f in fm.faults] == [
            (a, b, v) for (a, b), v in sorted(reference.items())
        ]
        got_and, got_or = fm.masks()
        ref_and, ref_or = self._reference_masks(16, 8, reference)
        np.testing.assert_array_equal(got_and, ref_and)
        np.testing.assert_array_equal(got_or, ref_or)
        np.testing.assert_array_equal(
            fm.faulty_addresses, sorted({a for a, _ in reference})
        )
        for address in range(16):
            expected = [
                (a, b, v) for (a, b), v in sorted(reference.items()) if a == address
            ]
            assert [
                (f.address, f.bit, f.stuck_value) for f in fm.faults_at(address)
            ] == expected

    @settings(max_examples=60, deadline=None)
    @given(
        first=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(0, 1)),
            max_size=20,
        ),
        second=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(0, 1)),
            max_size=20,
        ),
    )
    def test_merge_matches_dict_union(self, first, second):
        a = FaultMap(8, 8, [BitFault(*entry) for entry in first])
        b = FaultMap(8, 8, [BitFault(*entry) for entry in second])
        reference: dict[tuple[int, int], int] = {}
        for address, bit, value in first + second:  # later adds win, b wins ties
            reference[(address, bit)] = value
        merged = a.merge(b)
        assert [(f.address, f.bit, f.stuck_value) for f in merged.faults] == [
            (address, bit, value)
            for (address, bit), value in sorted(reference.items())
        ]

    def test_masks_refresh_after_add(self):
        fm = FaultMap(4, 8, [BitFault(0, 0, 1)])
        _, or_before = fm.masks()
        assert or_before[1] == 0
        fm.add(BitFault(1, 2, 1))  # must invalidate the cached masks
        and_after, or_after = fm.masks()
        assert or_after[1] == 0b100
        fm.add(BitFault(1, 2, 0))  # polarity override flips OR to AND
        and_final, or_final = fm.masks()
        assert or_final[1] == 0
        assert and_final[1] == 0xFF ^ 0b100

    def test_masks_returns_independent_copies(self):
        fm = FaultMap(4, 8, [BitFault(0, 0, 1)])
        and_masks, or_masks = fm.masks()
        and_masks[:] = 0
        or_masks[:] = 0xFF
        fresh_and, fresh_or = fm.masks()
        assert fresh_and[0] == 0xFF
        assert fresh_or[0] == 0b1

    def test_mask_views_are_read_only_and_copy_free(self):
        fm = FaultMap(4, 8, [BitFault(0, 0, 1)])
        view_and, view_or = fm.mask_views()
        np.testing.assert_array_equal(view_and, fm.masks()[0])
        np.testing.assert_array_equal(view_or, fm.masks()[1])
        with pytest.raises(ValueError):
            view_and[0] = 0
        assert fm.mask_views()[0] is view_and  # cached, not rebuilt

    def test_apply_tracks_mutation(self):
        fm = FaultMap(2, 8)
        words = np.array([0x00, 0x00], dtype=np.uint64)
        np.testing.assert_array_equal(fm.apply(words), words)
        fm.add(BitFault(1, 0, 1))
        assert fm.apply(words)[1] == 0x01

    def test_contains_out_of_range_is_false(self):
        fm = FaultMap(4, 8, [BitFault(0, 0, 1)])
        assert (0, 0) in fm
        assert (4, 0) not in fm
        assert (0, 8) not in fm
        assert (-1, 0) not in fm

    def test_contains_malformed_key_is_false(self):
        """The dict-backed core answered False for any wrong-shaped key."""
        fm = FaultMap(4, 8, [BitFault(0, 0, 1)])
        assert (1, 2, 3) not in fm
        assert "ab" not in fm
        assert (0,) not in fm
        assert ("x", "y") not in fm
        assert None not in fm
        # keys must be true integers: 0.7 must not truncate to a spurious hit,
        # and strings must not coerce (floats are rejected outright, which is
        # stricter than dict hash-equality but never answers True wrongly)
        assert (0.7, 0) not in fm
        assert (0.0, 0.0) not in fm
        assert ("0", "0") not in fm
        assert (np.int64(0), np.int64(0)) in fm  # numpy ints are real indices

    def test_faults_at_unknown_address_is_empty(self):
        fm = FaultMap(4, 8, [BitFault(0, 0, 1)])
        assert fm.faults_at(3) == []
        assert fm.faults_at(17) == []

    def test_from_arrays_rejects_non_binary_stuck_values(self):
        stuck = np.zeros((2, 4), dtype=bool)
        values = np.zeros((2, 4), dtype=int)
        stuck[0, 1] = True
        values[0, 1] = 2
        with pytest.raises(ValueError):
            FaultMap.from_arrays(stuck, values)
        # non-stuck cells may hold arbitrary values — they are ignored
        values[0, 1] = 1
        values[1, 3] = 9
        assert FaultMap.from_arrays(stuck, values).num_faults == 1

    def test_from_arrays_copies_input_arrays(self):
        stuck = np.zeros((2, 4), dtype=bool)
        stuck[1, 2] = True
        values = np.ones((2, 4), dtype=int)
        fm = FaultMap.from_arrays(stuck, values)
        stuck[0, 0] = True  # caller mutation must not leak into the map
        assert fm.num_faults == 1

    def test_dense_views_expose_state(self):
        fm = FaultMap(2, 4, [BitFault(1, 3, 1), BitFault(0, 0, 0)])
        expected_stuck = np.zeros((2, 4), dtype=bool)
        expected_stuck[1, 3] = True
        expected_stuck[0, 0] = True
        np.testing.assert_array_equal(fm.stuck_mask, expected_stuck)
        values = fm.stuck_values
        assert values[1, 3] == 1
        assert values[0, 0] == 0
        assert np.all(values[~expected_stuck] == 0)


class TestFaultMapProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        num_words=st.integers(1, 32),
        word_bits=st.integers(1, 24),
        rate=st.floats(0.0, 1.0),
        seed=st.integers(0, 1000),
    )
    def test_random_map_is_within_geometry(self, num_words, word_bits, rate, seed):
        fm = FaultMap.random(num_words, word_bits, rate, rng=seed)
        for fault in fm.faults:
            assert 0 <= fault.address < num_words
            assert 0 <= fault.bit < word_bits
        assert 0.0 <= fm.fault_rate <= 1.0

    @settings(max_examples=50, deadline=None)
    @given(
        words=st.lists(st.integers(0, 2**16 - 1), min_size=1, max_size=32),
        rate=st.floats(0.0, 1.0),
        seed=st.integers(0, 1000),
    )
    def test_apply_is_idempotent(self, words, rate, seed):
        """Applying a fault map twice gives the same result as applying once —
        the defining property of stable read-disturb corruption."""
        word_array = np.array(words, dtype=np.uint64)
        fm = FaultMap.random(len(words), 16, rate, rng=seed)
        once = fm.apply(word_array)
        twice = fm.apply(once)
        np.testing.assert_array_equal(once, twice)

    @settings(max_examples=50, deadline=None)
    @given(
        words=st.lists(st.integers(0, 2**12 - 1), min_size=1, max_size=16),
        seed=st.integers(0, 200),
    )
    def test_apply_only_touches_mapped_bits(self, words, seed):
        word_array = np.array(words, dtype=np.uint64)
        fm = FaultMap.random(len(words), 12, 0.3, rng=seed)
        corrupted = fm.apply(word_array)
        flipped = word_array ^ corrupted
        mapped = np.zeros(len(words), dtype=np.uint64)
        for fault in fm.faults:
            mapped[fault.address] |= np.uint64(1 << fault.bit)
        assert np.all((flipped & ~mapped) == 0)


class TestClusteringDiagnostics:
    """Run-length and autocorrelation diagnostics on known fault patterns."""

    def test_empty_map_summary_is_zero(self):
        summary = FaultMap(8, 16).clustering_summary()
        assert summary["fault_rate"] == 0.0
        assert summary["mean_row_run"] == 0.0
        assert summary["max_row_run"] == 0
        assert summary["mean_column_run"] == 0.0
        assert summary["max_column_run"] == 0
        assert summary["row_autocorrelation"] == 0.0
        assert summary["column_autocorrelation"] == 0.0

    def test_run_lengths_on_known_pattern(self):
        fm = FaultMap(8, 16)
        for bit in (2, 3, 4):  # one horizontal run of 3 in word 0
            fm.add(BitFault(0, bit, 1))
        fm.add(BitFault(5, 0, 0))  # plus an isolated fault
        assert sorted(fm.fault_run_lengths("row").tolist()) == [1, 3]
        # vertically every fault is isolated: four runs of 1
        assert sorted(fm.fault_run_lengths("column").tolist()) == [1, 1, 1, 1]

    def test_runs_do_not_join_across_line_boundaries(self):
        fm = FaultMap(2, 4)
        for bit in (2, 3):  # run touching the end of word 0...
            fm.add(BitFault(0, bit, 1))
        for bit in (0, 1):  # ...and a run starting word 1
            fm.add(BitFault(1, bit, 1))
        assert sorted(fm.fault_run_lengths("row").tolist()) == [2, 2]

    def test_full_row_has_perfect_row_autocorrelation(self):
        fm = FaultMap(8, 16)
        for bit in range(16):
            fm.add(BitFault(3, bit, 1))
        assert fm.spatial_autocorrelation("row") == pytest.approx(1.0)
        assert fm.spatial_autocorrelation("column") < fm.spatial_autocorrelation("row")
        assert fm.clustering_summary()["max_row_run"] == 16

    def test_full_column_has_perfect_column_autocorrelation(self):
        fm = FaultMap(8, 16)
        for address in range(8):
            fm.add(BitFault(address, 5, 1))
        assert fm.spatial_autocorrelation("column") == pytest.approx(1.0)
        assert fm.clustering_summary()["max_column_run"] == 8

    def test_degenerate_maps_report_zero_autocorrelation(self):
        full = FaultMap(4, 4)
        for address in range(4):
            for bit in range(4):
                full.add(BitFault(address, bit, 1))
        assert full.spatial_autocorrelation("row") == 0.0  # zero variance
        single_word = FaultMap(1, 4)
        single_word.add(BitFault(0, 1, 1))
        assert single_word.spatial_autocorrelation("column") == 0.0

    def test_invalid_axis_rejected(self):
        fm = FaultMap(4, 4)
        with pytest.raises(ValueError):
            fm.fault_run_lengths("diagonal")
        with pytest.raises(ValueError):
            fm.spatial_autocorrelation("diagonal")
