"""Tests for the sweep engine and the content-addressed artifact cache."""

from __future__ import annotations

import importlib
import os
import signal
import time

import numpy as np
import pytest

from repro.experiments import run_fig5, run_fig9a, run_fig10
from repro.experiments.cache import ArtifactCache, cache_digest
from repro.experiments.engine import (
    ProcessBackend,
    RetryingWorker,
    SerialBackend,
    SweepRunner,
    SweepTask,
    TaskTimeoutError,
    ThreadBackend,
    WorkerCrashedError,
    expand_grid,
    resolve_backend,
    store_label,
    worker_identity,
)


def _square_worker(shared, task):
    rng = np.random.default_rng(task.seed)
    return {
        "index": task.index,
        "value": task.param("value") ** 2 + shared["offset"],
        "draw": float(rng.uniform()),
    }


def _failing_worker(shared, task):
    if task.param("value") == shared["bad"]:
        raise RuntimeError("boom")
    time.sleep(shared.get("delay", 0.0))
    return task.param("value")


def _suicidal_worker(shared, task):
    if task.param("value") == shared["bad"]:
        os.kill(os.getpid(), signal.SIGKILL)
    return task.param("value")


def _sleepy_worker(shared, task):
    time.sleep(shared["sleep"])
    return task.param("value")


#: attempt counts per task index — lives in whichever process runs the task,
#: so it also works on the process backend (the retry happens in-worker)
_FLAKY_CALLS: dict[int, int] = {}


def _flaky_then_ok_worker(shared, task):
    count = _FLAKY_CALLS.get(task.index, 0) + 1
    _FLAKY_CALLS[task.index] = count
    if count <= shared["fail_times"]:
        raise RuntimeError("transient glitch")
    return task.param("value") * 10


class TestExpandGrid:
    def test_cartesian_order_and_fields(self):
        tasks = expand_grid(
            benchmarks=("a", "b"), voltages=(0.9, 0.5), modes=("naive", "adaptive")
        )
        assert len(tasks) == 8
        assert [t.index for t in tasks] == list(range(8))
        # benchmarks outermost, modes innermost
        assert tasks[0].benchmark == "a" and tasks[0].voltage == 0.9
        assert tasks[0].mode == "naive" and tasks[1].mode == "adaptive"
        assert tasks[4].benchmark == "b"

    def test_params_grid(self):
        tasks = expand_grid(params=[{"fault_rate": 0.1}, {"fault_rate": 0.2}], seed=5)
        assert [t.param("fault_rate") for t in tasks] == [0.1, 0.2]
        assert tasks[0].benchmark is None

    def test_seeds_deterministic_and_distinct(self):
        a = expand_grid(voltages=(0.5, 0.4, 0.3), seed=7)
        b = expand_grid(voltages=(0.5, 0.4, 0.3), seed=7)
        c = expand_grid(voltages=(0.5, 0.4, 0.3), seed=8)
        assert [t.seed for t in a] == [t.seed for t in b]
        assert len({t.seed for t in a}) == 3
        assert [t.seed for t in a] != [t.seed for t in c]

    def test_empty_grid(self):
        assert expand_grid(params=[]) == []

    def test_with_params_merges(self):
        task = SweepTask(index=0, seed=1, params=(("x", 1),))
        merged = task.with_params(y=2)
        assert merged.param("x") == 1 and merged.param("y") == 2
        assert task.param("y", "missing") == "missing"


class TestSweepRunner:
    def test_serial_matches_parallel(self):
        tasks = expand_grid(params=[{"value": v} for v in range(6)], seed=3)
        shared = {"offset": 10}
        serial = SweepRunner(workers=1).map(_square_worker, tasks, shared=shared)
        parallel = SweepRunner(workers=3).map(_square_worker, tasks, shared=shared)
        assert serial == parallel
        assert [r["value"] for r in serial] == [v**2 + 10 for v in range(6)]

    def test_parallel_false_forces_serial(self):
        runner = SweepRunner(workers=8, parallel=False)
        assert runner.effective_workers(100) == 1

    def test_single_task_runs_in_process(self):
        runner = SweepRunner(workers=8)
        assert runner.effective_workers(1) == 1

    def test_tasks_run_counter(self):
        runner = SweepRunner(workers=1)
        runner.map(_square_worker, expand_grid(params=[{"value": 1}]), {"offset": 0})
        runner.map(_square_worker, expand_grid(params=[{"value": 2}]), {"offset": 0})
        assert runner.tasks_run == 2

    def test_empty_task_list(self):
        assert SweepRunner().map(_square_worker, [], shared=None) == []


class TestBackends:
    """The pluggable execution layer must be invisible in the results."""

    def _mini_sweep(self, runner):
        tasks = expand_grid(params=[{"value": v} for v in range(9)], seed=13)
        return runner.map(_square_worker, tasks, shared={"offset": 4})

    def test_all_backends_bit_identical(self):
        serial = self._mini_sweep(SweepRunner(workers=1, backend="serial"))
        process = self._mini_sweep(SweepRunner(workers=3, backend="process"))
        thread = self._mini_sweep(SweepRunner(workers=3, backend="thread"))
        assert serial == process == thread
        assert [r["value"] for r in serial] == [v**2 + 4 for v in range(9)]

    def test_backend_instances_accepted(self):
        runner = SweepRunner(workers=3, backend=ThreadBackend())
        assert self._mini_sweep(runner) == self._mini_sweep(SweepRunner(workers=1))

    def test_env_override_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_BACKEND", "thread")
        assert isinstance(resolve_backend(None), ThreadBackend)
        monkeypatch.setenv("REPRO_SWEEP_BACKEND", "serial")
        assert isinstance(resolve_backend(None), SerialBackend)
        monkeypatch.delenv("REPRO_SWEEP_BACKEND")
        assert isinstance(resolve_backend(None), ProcessBackend)
        # an explicit argument beats the environment
        monkeypatch.setenv("REPRO_SWEEP_BACKEND", "thread")
        assert isinstance(resolve_backend("process"), ProcessBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep backend"):
            resolve_backend("quantum")
        with pytest.raises(ValueError):
            SweepRunner(workers=2, backend="quantum").map(
                _square_worker, expand_grid(params=[{"value": 1}, {"value": 2}])
            )
        # a typo must fail even when the single-worker path would make the
        # backend choice irrelevant — otherwise the error is CPU-count-dependent
        with pytest.raises(ValueError, match="unknown sweep backend"):
            SweepRunner(workers=1, backend="quantum").map(
                _square_worker, expand_grid(params=[{"value": 1}]), shared={"offset": 0}
            )

    def test_tasks_run_counts_consumed_results_only(self):
        tasks = expand_grid(params=[{"value": v} for v in range(5)], seed=1)
        runner = SweepRunner(workers=1)
        stream = runner.as_completed(_square_worker, tasks, shared={"offset": 0})
        assert runner.tasks_run == 0  # nothing executed at submission time
        next(stream)
        assert runner.tasks_run == 1
        list(stream)
        assert runner.tasks_run == 5

    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1), ("process", 3), ("thread", 3),
    ])
    def test_as_completed_streams_every_backend(self, backend, workers):
        tasks = expand_grid(params=[{"value": v} for v in range(7)], seed=2)
        runner = SweepRunner(workers=workers, backend=backend)
        pairs = list(runner.as_completed(_square_worker, tasks, shared={"offset": 0}))
        assert len(pairs) == len(tasks)
        # every yielded pair couples a task with its own result
        for task, result in pairs:
            assert result["index"] == task.index
            assert result["value"] == task.param("value") ** 2
        # all tasks land exactly once, in some completion order
        assert sorted(task.index for task, _ in pairs) == [t.index for t in tasks]

    def test_serial_streaming_is_lazy(self):
        executed = []

        def recording_worker(shared, task):
            executed.append(task.index)
            return task.index

        tasks = expand_grid(params=[{"value": v} for v in range(5)], seed=1)
        stream = SweepRunner(workers=1).as_completed(recording_worker, tasks)
        assert executed == []  # nothing runs until the consumer pulls
        first = next(stream)
        assert executed == [0] and first[1] == 0
        rest = list(stream)
        assert executed == [0, 1, 2, 3, 4]
        assert [value for _, value in rest] == [1, 2, 3, 4]

    def test_map_is_ordered_on_unordered_backends(self):
        tasks = expand_grid(params=[{"value": v} for v in range(16)], seed=9)
        for backend in ("process", "thread"):
            results = SweepRunner(workers=4, backend=backend).map(
                _square_worker, tasks, shared={"offset": 0}
            )
            assert [r["index"] for r in results] == list(range(16))

    def test_progress_callback_sees_every_completion(self):
        seen = []
        runner = SweepRunner(
            workers=1, progress=lambda task, result, done, total: seen.append((done, total))
        )
        runner.map(_square_worker, expand_grid(params=[{"value": v} for v in range(4)]), {"offset": 0})
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]

    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1), ("process", 3), ("thread", 3),
    ])
    def test_worker_errors_propagate(self, backend, workers):
        tasks = expand_grid(params=[{"value": v} for v in range(8)], seed=4)
        runner = SweepRunner(workers=workers, backend=backend)
        with pytest.raises(RuntimeError, match="boom"):
            runner.map(_failing_worker, tasks, shared={"bad": 3})

    def test_thread_backend_cancels_queue_on_failure(self):
        # task 0 fails instantly; the 39 queued 50 ms sleepers must be
        # cancelled rather than drained to completion before the error
        # surfaces (which would stall a long sweep for its full duration)
        tasks = expand_grid(params=[{"value": v} for v in range(40)], seed=4)
        stream = ThreadBackend().submit(
            _failing_worker, {"bad": 0, "delay": 0.05}, tasks, workers=2, chunksize=1
        )
        start = time.perf_counter()
        with pytest.raises(RuntimeError, match="boom"):
            for _ in stream:
                pass
        assert time.perf_counter() - start < 1.0  # 40 x 50 ms if drained

    def test_submit_results_matches_map(self):
        tasks = expand_grid(params=[{"value": v} for v in range(6)], seed=3)
        runner = SweepRunner(workers=2, backend="thread")
        execution = runner.submit(_square_worker, tasks, shared={"offset": 1})
        assert len(execution) == 6
        assert execution.results() == SweepRunner(workers=1).map(
            _square_worker, tasks, shared={"offset": 1}
        )


class TestRobustness:
    """Retry budgets, crash diagnostics, and hang bounds on the pool backends."""

    @pytest.mark.parametrize("backend,workers", [
        ("serial", 1), ("process", 3), ("thread", 3),
    ])
    def test_retries_recover_transient_failures(self, backend, workers):
        _FLAKY_CALLS.clear()
        tasks = expand_grid(params=[{"value": v} for v in range(6)], seed=9)
        runner = SweepRunner(
            workers=workers, backend=backend, retries=1, backoff=0.01
        )
        results = runner.map(
            _flaky_then_ok_worker, tasks, shared={"fail_times": 1}
        )
        assert results == [v * 10 for v in range(6)]

    def test_retry_budget_exhausts_and_reraises(self):
        _FLAKY_CALLS.clear()
        tasks = expand_grid(params=[{"value": 1}, {"value": 2}], seed=9)
        runner = SweepRunner(workers=1, retries=1, backoff=0.01)
        with pytest.raises(RuntimeError, match="transient glitch"):
            runner.map(_flaky_then_ok_worker, tasks, shared={"fail_times": 3})

    def test_zero_retries_by_default(self):
        _FLAKY_CALLS.clear()
        tasks = expand_grid(params=[{"value": 1}, {"value": 2}], seed=9)
        with pytest.raises(RuntimeError, match="transient glitch"):
            SweepRunner(workers=1).map(
                _flaky_then_ok_worker, tasks, shared={"fail_times": 1}
            )

    def test_sigkilled_pool_worker_names_in_flight_tasks(self):
        tasks = expand_grid(params=[{"value": v} for v in range(4)], seed=2)
        runner = SweepRunner(workers=2, backend="process")
        with pytest.raises(WorkerCrashedError, match="--backend queue") as info:
            runner.map(_suicidal_worker, tasks, shared={"bad": 2})
        assert len(info.value.in_flight) >= 1
        assert any("value=2" in task.describe() for task in info.value.in_flight)

    def test_task_timeout_bounds_a_hung_pool(self):
        tasks = expand_grid(params=[{"value": v} for v in range(2)], seed=2)
        runner = SweepRunner(workers=2, backend="process", task_timeout=0.5)
        start = time.perf_counter()
        with pytest.raises(TaskTimeoutError, match="task-timeout"):
            runner.map(_sleepy_worker, tasks, shared={"sleep": 30.0})
        # the pool is torn down, not drained: nowhere near the 30 s sleep
        assert time.perf_counter() - start < 10.0

    def test_worker_identity_unwraps_retry_wrapper(self):
        wrapped = RetryingWorker(_square_worker, retries=2)
        assert worker_identity(wrapped) == worker_identity(_square_worker)
        assert worker_identity(_square_worker).endswith("._square_worker")

    def test_store_label_covers_shared_payload(self):
        a = store_label("fig9a", {"num_words": 256})
        b = store_label("fig9a", {"num_words": 512})
        assert a != b and a.startswith("fig9a#")
        # an undigestable payload needs the label to vouch for the config
        assert store_label("fig9a", {"live": object()}) == "fig9a"
        with pytest.raises(ValueError, match="sweep_label"):
            store_label("", {"live": object()})


class TestArtifactCache:
    def test_memory_layer_thread_safe(self, tmp_path):
        # the cache rides inside ThreadBackend shared payloads: hammer the
        # check-then-evict bookkeeping from many threads at a tiny capacity
        import concurrent.futures

        cache = ArtifactCache(root=tmp_path, memory_items=2)

        def worker(thread_index):
            for step in range(200):
                key = {"k": (thread_index * 200 + step) % 7}
                cache.get_or_create("sweep-result", key, lambda: step)
            return True

        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            assert all(pool.map(worker, range(8)))

    def test_miss_then_hit(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        key = {"benchmark": "mnist", "seed": 1}
        assert cache.get("prepared-benchmark", key) is None
        cache.put("prepared-benchmark", key, {"payload": 42})
        assert cache.get("prepared-benchmark", key) == {"payload": 42}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_get_or_create_runs_factory_once(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        calls = []

        def factory():
            calls.append(1)
            return "artifact"

        assert cache.get_or_create("kind", {"k": 1}, factory) == "artifact"
        assert cache.get_or_create("kind", {"k": 1}, factory) == "artifact"
        assert len(calls) == 1

    def test_persistence_across_instances(self, tmp_path):
        ArtifactCache(root=tmp_path).put("kind", {"k": 1}, [1, 2, 3])
        fresh = ArtifactCache(root=tmp_path)
        assert fresh.get("kind", {"k": 1}) == [1, 2, 3]

    def test_disabled_cache_never_hits(self, tmp_path):
        cache = ArtifactCache(root=tmp_path, enabled=False)
        cache.put("kind", {"k": 1}, "value")
        assert cache.get("kind", {"k": 1}) is None
        assert not list(tmp_path.rglob("*.pkl"))

    def test_array_content_addressing(self):
        base = {"weights": np.arange(10.0), "seed": 1}
        same = {"weights": np.arange(10.0), "seed": 1}
        different = {"weights": np.arange(10.0) + 1e-12, "seed": 1}
        assert cache_digest(base) == cache_digest(same)
        assert cache_digest(base) != cache_digest(different)

    def test_key_order_is_canonical(self):
        assert cache_digest({"a": 1, "b": 2}) == cache_digest({"b": 2, "a": 1})

    def test_encoding_is_length_delimited(self):
        """Regression: adjacent variable-length components must not re-split
        into a colliding key."""
        assert cache_digest({"k": ["xstr:y"]}) != cache_digest({"k": ["x", "y"]})
        assert cache_digest({"k": ["ab", "c"]}) != cache_digest({"k": ["a", "bc"]})
        assert cache_digest({"k": [["a"], []]}) != cache_digest({"k": [[], ["a"]]})
        assert cache_digest({"k": "int:1"}) != cache_digest({"k": 1})

    def test_distinct_kinds_do_not_collide(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        cache.put("kind-a", {"k": 1}, "a")
        cache.put("kind-b", {"k": 1}, "b")
        assert cache.get("kind-a", {"k": 1}) == "a"
        assert cache.get("kind-b", {"k": 1}) == "b"

    def test_unhashable_key_component_rejected(self):
        with pytest.raises(TypeError):
            cache_digest({"bad": object()})

    def test_nested_keys_and_scalars(self):
        key = {
            "nested": {"list": [1, 2.5, "s", None], "flag": True},
            "tuple": (np.float64(1.0), np.int32(2)),
        }
        assert cache_digest(key) == cache_digest(key)

    def test_pickled_cache_drops_memory_layer(self, tmp_path):
        import pickle

        cache = ArtifactCache(root=tmp_path)
        cache.put("kind", {"k": 1}, "value")
        clone = pickle.loads(pickle.dumps(cache))
        assert clone._memory == {}
        # but the disk layer is shared, so the clone still hits
        assert clone.get("kind", {"k": 1}) == "value"


class TestDriverEquivalence:
    """Parallel and serial sweeps must produce identical tables."""

    def test_fig9a_parallel_matches_serial(self):
        voltages = np.array([0.44, 0.50, 0.54])
        serial = run_fig9a(voltages=voltages, num_words=128, runner=SweepRunner(workers=1))
        parallel = run_fig9a(voltages=voltages, num_words=128, runner=SweepRunner(workers=2))
        for a, b in zip(serial.points, parallel.points):
            assert (a.voltage, a.measured_rate, a.predicted_rate, a.word_rate) == (
                b.voltage,
                b.measured_rate,
                b.predicted_rate,
                b.word_rate,
            )

    def test_fig9a_three_backends_identical(self):
        """Seeded mini-sweep through serial, process, and thread backends."""
        voltages = np.array([0.46, 0.52])
        rows = []
        for backend, workers in (("serial", 1), ("process", 2), ("thread", 2)):
            result = run_fig9a(
                voltages=voltages,
                num_words=96,
                runner=SweepRunner(workers=workers, backend=backend),
            )
            rows.append(
                [
                    (p.voltage, p.measured_rate, p.predicted_rate, p.word_rate)
                    for p in result.points
                ]
            )
        assert rows[0] == rows[1] == rows[2]

    def test_fig5_cold_and_warm_cache_identical(self, tmp_path):
        # serial runner: cache stats are per-process, so the stores/hits
        # assertions are only meaningful when the tasks run in this process
        kwargs = dict(
            fault_rates=(0.01, 0.05),
            num_samples=400,
            adaptive_epochs=4,
            seed=2,
            runner=SweepRunner(workers=1),
        )
        cache = ArtifactCache(root=tmp_path)
        cold = run_fig5(cache=cache, **kwargs)
        stores_after_cold = cache.stats.stores
        warm = run_fig5(cache=cache, **kwargs)
        assert cache.stats.stores == stores_after_cold  # nothing retrained
        assert cache.stats.hits > 0
        for a, b in zip(cold.points, warm.points):
            assert (a.fault_rate, a.naive_error, a.adaptive_error) == (
                b.fault_rate,
                b.naive_error,
                b.adaptive_error,
            )

    def test_fig5_cache_disabled_matches_cached(self, tmp_path):
        kwargs = dict(
            fault_rates=(0.02,), num_samples=400, adaptive_epochs=3, seed=4
        )
        cached = run_fig5(cache=ArtifactCache(root=tmp_path), **kwargs)
        uncached = run_fig5(cache=ArtifactCache(root=tmp_path / "x", enabled=False), **kwargs)
        for a, b in zip(cached.points, uncached.points):
            assert (a.naive_error, a.adaptive_error) == (b.naive_error, b.adaptive_error)

    def test_fig5_warm_hit_restores_masked_view(self, tmp_path):
        """Regression: a cache hit must reinstall the quantized+masked
        effective view the trainer leaves behind, not just master weights.
        Uses an MSE benchmark so even a tiny prediction drift is caught."""
        kwargs = dict(
            benchmark="inversek2j",
            fault_rates=(0.05,),
            num_samples=300,
            adaptive_epochs=3,
            seed=6,
            runner=SweepRunner(workers=1),
        )
        cache = ArtifactCache(root=tmp_path)
        cold = run_fig5(cache=cache, **kwargs)
        assert cache.stats.stores > 0
        warm = run_fig5(cache=cache, **kwargs)
        assert warm.points[0].adaptive_error == cold.points[0].adaptive_error
        assert warm.points[0].naive_error == cold.points[0].naive_error

    def test_fig10_parallel_matches_serial(self, tmp_path):
        kwargs = dict(
            benchmarks=("inversek2j",),
            voltages=(0.90, 0.50),
            num_samples=300,
            adaptive_epochs=4,
            seed=5,
        )
        serial = run_fig10(
            runner=SweepRunner(workers=1), cache=ArtifactCache(root=tmp_path / "a"), **kwargs
        )
        parallel = run_fig10(
            runner=SweepRunner(workers=2), cache=ArtifactCache(root=tmp_path / "b"), **kwargs
        )
        for a, b in zip(
            serial.sweep_for("inversek2j").points, parallel.sweep_for("inversek2j").points
        ):
            assert (a.voltage, a.bit_fault_rate, a.naive_error, a.adaptive_error) == (
                b.voltage,
                b.bit_fault_rate,
                b.naive_error,
                b.adaptive_error,
            )


class TestDriverCLIs:
    """Every driver CLI must build its parser with the shared sweep flags."""

    @pytest.mark.parametrize("module_name", [
        "fig05_mat_sweep",
        "fig09_sram",
        "fig10_error_vs_voltage",
        "fig11_energy",
        "fig12_temperature",
        "table1_application_error",
        "table2_energy_scenarios",
        "table3_comparison",
        "scaling_geometry",
        "variation_scenarios",
        "fleet_population",
    ])
    def test_help_exits_cleanly_with_shared_flags(self, module_name, capsys):
        module = importlib.import_module(f"repro.experiments.{module_name}")
        with pytest.raises(SystemExit) as info:
            module.main(["--help"])
        assert info.value.code == 0
        out = capsys.readouterr().out
        for flag in (
            "--workers", "--backend", "--shard", "--stream",
            "--retries", "--task-timeout", "--backoff",
        ):
            assert flag in out, f"{module_name} --help is missing {flag}"
        if module_name in ("fig10_error_vs_voltage", "table1_application_error"):
            # the adaptive column's warm-start toggle (and its cold-path
            # spelling) must be advertised by both drivers that run it
            for flag in ("--warm-start", "--no-warm-start"):
                assert flag in out, f"{module_name} --help is missing {flag}"


#: Per-driver (cheap grid args, poison match) for the quarantine-rendering
#: sweep below.  Matches address one task's ``describe()`` string, so the
#: queue workers' fault plan quarantines that task while the rest of the
#: grid completes and the CLI must still print a merged table.
_QUARANTINE_CASES = [
    (
        "fig05_mat_sweep",
        ["--fault-rates", "0.02", "0.05", "--num-samples", "200",
         "--adaptive-epochs", "2"],
        "fault_rate=0.05",
    ),
    (
        "fig09_sram",
        ["--figure", "a", "--voltages", "0.45", "0.50"],
        "voltage=0.45",
    ),
    (
        "fig10_error_vs_voltage",
        ["--benchmarks", "inversek2j", "--voltages", "0.9", "0.5",
         "--num-samples", "200", "--adaptive-epochs", "2"],
        "mode=adaptive",
    ),
    ("fig11_energy", [], "point=optimized"),
    (
        "table1_application_error",
        ["--benchmarks", "inversek2j", "--voltages", "0.9", "0.5", "0.46",
         "--num-samples", "200", "--adaptive-epochs", "2"],
        "mode=adaptive",
    ),
    ("table2_energy_scenarios", [], "mode=EnOpt_joint"),
    ("table3_comparison", ["--num-samples", "200"], "mode=matic"),
    (
        "scaling_geometry",
        ["--workloads", "inversek2j", "--num-pes", "4", "8",
         "--words-per-bank", "128", "--num-samples", "200"],
        "num_pes=8",
    ),
    (
        "variation_scenarios",
        ["--shapes", "iid", "region", "--strengths", "0.5", "--num-dies", "2",
         "--num-pes", "4", "--words-per-bank", "128", "--num-samples", "200",
         "--skip-error"],
        "shape=region",
    ),
    (
        "fleet_population",
        ["--dies", "2", "--requests", "4", "--num-pes", "4",
         "--words-per-bank", "128", "--num-samples", "200"],
        "die=1",
    ),
]


class TestQuarantineRendering:
    """A poisoned task must degrade a driver CLI, never crash it.

    Every driver runs its cheapest grid on the queue backend with a fault
    plan that poisons one task (``PoisonTask`` via ``$REPRO_FAULT_PLAN``,
    ``--retries 0`` so the first failed attempt quarantines).  The CLI must
    still print the merged table — healthy rows plus a ``QUARANTINED`` row
    per sentinel — and exit nonzero so scripted callers notice.
    """

    @pytest.fixture(scope="class")
    def shared_cache_dir(self, tmp_path_factory):
        # one artifact cache across all drivers: prepared benchmarks and
        # adaptive trainings recall across parametrized cases
        return str(tmp_path_factory.mktemp("quarantine-cli-cache"))

    @pytest.mark.parametrize(
        "module_name, args, match",
        _QUARANTINE_CASES,
        ids=[case[0] for case in _QUARANTINE_CASES],
    )
    def test_poisoned_task_renders_quarantined_row(
        self, module_name, args, match, shared_cache_dir, monkeypatch, capsys
    ):
        from repro.experiments.faults import ENV_FAULT_PLAN, FaultPlan, PoisonTask

        plan = FaultPlan(rules=(PoisonTask(match=match),))
        monkeypatch.setenv(ENV_FAULT_PLAN, plan.to_json())
        module = importlib.import_module(f"repro.experiments.{module_name}")
        code = module.main(
            args
            + [
                "--backend", "queue", "--workers", "1", "--retries", "0",
                "--backoff", "0.05", "--cache-dir", shared_cache_dir,
            ]
        )
        out = capsys.readouterr().out
        assert code == 1, f"{module_name} must exit nonzero when degraded"
        assert "QUARANTINED" in out
        assert match in out, "the quarantined row must describe the lost task"
        assert "quarantined task(s); exiting nonzero" in out
        # the table itself still rendered (headers plus separator rule)
        assert "---" in out

    def test_quarantined_adaptive_point_blanks_the_fault_rate(self, tmp_path):
        """A quarantined adaptive task must blank its bit-fault-rate cells.

        The fault rate rides on the adaptive task's profiling pass, so when
        that task is lost the rate was never measured — rendering ``0.00%``
        would claim a fault-free SRAM at an overscaled voltage.  The cell
        must render "-" like the error cells (the regression this pins down:
        ``adaptive["fault_rate"] if adaptive else 0.0``)."""
        from repro.experiments.cache import ArtifactCache
        from repro.experiments.engine import QuarantinedTask, SweepRunner
        from repro.experiments.fig10_error_vs_voltage import run_fig10

        class AdaptivePoisonedRunner(SweepRunner):
            """Serial runner that quarantines every adaptive task."""

            def map(self, worker, tasks, shared=None):
                for task in tasks:
                    if task.mode == "adaptive":
                        yield QuarantinedTask(
                            task=task, digest="poisoned", attempts=1
                        )
                    else:
                        yield worker(shared, task)

        result = run_fig10(
            benchmarks=("inversek2j",),
            voltages=(0.9, 0.5),
            num_samples=200,
            adaptive_epochs=2,
            runner=AdaptivePoisonedRunner(),
            cache=ArtifactCache(root=tmp_path / "cache"),
        )
        sweep = result.sweep_for("inversek2j")
        nominal = sweep.point_at(0.9)
        overscaled = sweep.point_at(0.5)
        assert nominal.bit_fault_rate == 0.0  # fault-free by construction
        assert nominal.naive_error is not None
        assert overscaled.bit_fault_rate is None  # never measured
        assert overscaled.adaptive_error is None
        text = result.to_experiment_result().to_text()
        assert "QUARANTINED" in text
        row = next(
            line for line in text.splitlines() if line.lstrip().startswith("inversek2j") and "0.50" in line
        )
        assert "0.00%" not in row, "a lost measurement must not render as 0.00%"
        assert "-" in row

    def test_serial_walk_driver_renders_recalled_sentinels(self):
        """Fig. 12's forced-serial walk cannot be poisoned through the queue,
        but a shard-merged store can still recall sentinels into its result —
        rendering must tolerate them like every grid driver."""
        from repro.experiments.fig12_temperature import Fig12Result

        result = Fig12Result(
            benchmark="inversek2j",
            target_voltage=0.50,
            nominal_error=0.01,
            steps=[],
            quarantined=["quarantined after 1 attempt(s) — temperature=85.0"],
        )
        text = result.to_experiment_result().to_text()
        assert "QUARANTINED" in text
        assert "temperature=85.0" in text
