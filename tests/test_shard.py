"""Shard-partition invariants and the cache-backed shard merge.

The contract that lets a fleet split one grid: for any shard count the
shards must be *disjoint* and *cover* the grid, the assignment must be
*stable under task-list reordering* (it hashes task content, never list
position), and a split run merged through the artifact cache must be
bit-identical to the unsharded run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.cache import (
    ArtifactCache,
    SHARD_RESULT_KIND,
    collect_shard_results,
    shard_result_key,
)
from repro.experiments.engine import (
    ShardIncompleteError,
    ShardSpec,
    SweepRunner,
    expand_grid,
    task_digest,
)


def _worker(shared, task):
    rng = np.random.default_rng(task.seed)
    return {
        "index": task.index,
        "value": task.param("value", 0) * 3 + (shared or {}).get("offset", 0),
        "draw": float(rng.uniform()),
    }


def _random_grid(rng: np.random.Generator):
    """A random mixed grid exercising both axis-style and params-style tasks."""
    if rng.uniform() < 0.5:
        return expand_grid(
            benchmarks=[f"bench{i}" for i in range(rng.integers(1, 4))],
            voltages=[round(float(v), 3) for v in rng.uniform(0.4, 0.9, rng.integers(1, 5))],
            modes=["naive", "adaptive"][: rng.integers(1, 3)],
            seed=int(rng.integers(0, 2**31)),
        )
    return expand_grid(
        params=[{"value": int(v)} for v in rng.integers(0, 100, rng.integers(1, 25))],
        seed=int(rng.integers(0, 2**31)),
    )


class TestShardSpec:
    def test_parse(self):
        spec = ShardSpec.parse("1/4")
        assert (spec.index, spec.count) == (1, 4)
        assert str(spec) == "1/4"

    @pytest.mark.parametrize("text", ["", "1", "1/", "/2", "a/b", "1/2/3", "2/2", "-1/2", "0/0"])
    def test_invalid_specs_rejected(self, text):
        with pytest.raises(ValueError):
            ShardSpec.parse(text)

    def test_single_shard_owns_everything(self):
        tasks = expand_grid(params=[{"value": v} for v in range(10)], seed=1)
        assert ShardSpec(0, 1).partition(tasks) == tasks


class TestPartitionInvariants:
    """For random grids and all n in 1..8: disjoint, covering, order-stable."""

    def test_disjoint_and_covering(self):
        rng = np.random.default_rng(20260729)
        for _ in range(12):
            tasks = _random_grid(rng)
            digests = {task_digest(task) for task in tasks}
            assert len(digests) == len(tasks), "grid tasks must have unique digests"
            for count in range(1, 9):
                shards = [ShardSpec(i, count).partition(tasks) for i in range(count)]
                merged = [task for shard in shards for task in shard]
                # covering: every task lands in exactly one shard
                assert sorted(t.index for t in merged) == sorted(t.index for t in tasks)
                # disjoint: no task in two shards
                seen = [task_digest(t) for t in merged]
                assert len(seen) == len(set(seen))

    def test_stable_under_reordering(self):
        import random

        rng = np.random.default_rng(42)
        shuffler = random.Random(42)
        for _ in range(8):
            tasks = _random_grid(rng)
            shuffled = list(tasks)
            shuffler.shuffle(shuffled)
            for count in range(1, 9):
                for index in range(count):
                    spec = ShardSpec(index, count)
                    original = {task_digest(t) for t in spec.partition(tasks)}
                    reordered = {task_digest(t) for t in spec.partition(shuffled)}
                    assert original == reordered

    def test_digest_ignores_index_but_not_seed(self):
        task = expand_grid(params=[{"value": 1}], seed=9)[0]
        from dataclasses import replace

        assert task_digest(replace(task, index=99)) == task_digest(task)
        assert task_digest(replace(task, seed=task.seed + 1)) != task_digest(task)

    def test_digest_canonicalizes_sets_and_rejects_opaque_objects(self):
        # set iteration order is hash-randomized, so the digest must sort it;
        # objects with address-bearing reprs have no stable encoding at all
        # and must fail loudly rather than silently destabilize sharding
        a = expand_grid(params=[{"tags": {"x", "y", "z"}}], seed=2)[0]
        b = expand_grid(params=[{"tags": frozenset(["z", "y", "x"])}], seed=2)[0]
        assert task_digest(a) == task_digest(b)
        opaque = expand_grid(params=[{"obj": object()}], seed=2)[0]
        with pytest.raises(TypeError, match="canonical digest"):
            task_digest(opaque)
        # object-dtype arrays hash element addresses — equally unstable
        boxed = expand_grid(
            params=[{"arr": np.array([{"a": 1}, {"b": 2}], dtype=object)}], seed=2
        )[0]
        with pytest.raises(TypeError, match="canonical digest"):
            task_digest(boxed)

    def test_assignment_deterministic_across_processes(self):
        # the digest is content-addressed (sha256), not Python-hash based, so
        # PYTHONHASHSEED / process boundaries cannot reshuffle shards
        tasks = expand_grid(voltages=(0.5, 0.46, 0.44), seed=3)
        assignments = [
            [ShardSpec(i, 3).owns(task) for i in range(3)] for task in tasks
        ]
        assert all(sum(row) == 1 for row in assignments)
        again = [[ShardSpec(i, 3).owns(task) for i in range(3)] for task in tasks]
        assert assignments == again


class TestShardedMerge:
    def _runner(self, store, spec, label="mini"):
        return SweepRunner(
            workers=1, shard=spec, shard_store=store, sweep_label=label
        )

    def test_two_shard_split_merges_bit_identical(self, tmp_path):
        tasks = expand_grid(params=[{"value": v} for v in range(12)], seed=5)
        shared = {"offset": 7}
        reference = SweepRunner(workers=1).map(_worker, tasks, shared=shared)

        store = ArtifactCache(root=tmp_path)
        first = self._runner(store, ShardSpec(0, 2))
        second = self._runner(store, ShardSpec(1, 2))
        sizes = [len(ShardSpec(i, 2).partition(tasks)) for i in range(2)]
        assert sum(sizes) == len(tasks)

        if sizes[1] == 0:  # degenerate split: shard 0 owns the whole grid
            assert first.map(_worker, tasks, shared=shared) == reference
        else:
            with pytest.raises(ShardIncompleteError) as info:
                first.map(_worker, tasks, shared=shared)
            assert info.value.completed == sizes[0]
            assert len(info.value.missing) == sizes[1]
        merged = second.map(_worker, tasks, shared=shared)
        assert merged == reference

    def test_rerun_merges_from_cache_without_recompute(self, tmp_path):
        tasks = expand_grid(params=[{"value": v} for v in range(10)], seed=6)
        store = ArtifactCache(root=tmp_path)
        reference = SweepRunner(workers=1).map(_worker, tasks, shared=None)
        for index in range(2):
            try:
                self._runner(store, ShardSpec(index, 2)).map(_worker, tasks, shared=None)
            except ShardIncompleteError:
                pass
        rerun = self._runner(store, ShardSpec(0, 2))
        assert rerun.map(_worker, tasks, shared=None) == reference
        assert rerun.tasks_run == 0  # pure merge: everything recalled

    def test_labels_namespace_merges(self, tmp_path):
        """Slices published under one sweep label must not leak into another."""
        tasks = expand_grid(params=[{"value": v} for v in range(6)], seed=7)
        store = ArtifactCache(root=tmp_path)
        for index in range(2):
            try:
                self._runner(store, ShardSpec(index, 2), label="config-a").map(
                    _worker, tasks, shared=None
                )
            except ShardIncompleteError:
                pass
        other = self._runner(store, ShardSpec(0, 2), label="config-b")
        sizes = [len(ShardSpec(i, 2).partition(tasks)) for i in range(2)]
        if sizes[1] > 0:
            with pytest.raises(ShardIncompleteError):
                other.map(_worker, tasks, shared=None)
        assert other.tasks_run == sizes[0]  # recomputed, not recalled from config-a

    def test_disabled_store_rejected(self, tmp_path):
        tasks = expand_grid(params=[{"value": 1}, {"value": 2}], seed=8)
        runner = SweepRunner(
            workers=1,
            shard=ShardSpec(0, 2),
            shard_store=ArtifactCache(root=tmp_path, enabled=False),
        )
        with pytest.raises(ValueError, match="artifact cache"):
            runner.map(_worker, tasks, shared=None)

    def test_collect_shard_results_reports_missing(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        cache.put(SHARD_RESULT_KIND, shard_result_key("s", "w", "d1"), {"result": 1})
        found, missing = collect_shard_results(cache, "s", "w", ["d1", "d2", "d1"])
        assert found == {"d1": {"result": 1}}
        assert missing == ["d2"]

    def test_worker_identity_keeps_sweeps_apart(self, tmp_path):
        """Two different workers over the same grid must not share results."""
        cache = ArtifactCache(root=tmp_path)
        key_a = shard_result_key("s", "module._worker", "d")
        key_b = shard_result_key("s", "module.other_worker", "d")
        cache.put(SHARD_RESULT_KIND, key_a, {"result": "a"})
        assert cache.get(SHARD_RESULT_KIND, key_b) is None

    def test_shared_payload_namespaces_the_store(self, tmp_path):
        """Same worker + grid with different shared payloads must not collide."""
        tasks = expand_grid(params=[{"value": v} for v in range(6)], seed=5)
        store = ArtifactCache(root=tmp_path)
        first = self._runner(store, ShardSpec(0, 1))
        a = first.map(_worker, tasks, shared={"offset": 10})
        second = self._runner(store, ShardSpec(0, 1))
        b = second.map(_worker, tasks, shared={"offset": 100})
        assert second.tasks_run == len(tasks)  # recomputed, not recalled
        assert [r["value"] for r in b] != [r["value"] for r in a]
        assert [r["value"] for r in b] == [v * 3 + 100 for v in range(6)]

    def test_undigestable_shared_requires_label(self, tmp_path):
        tasks = expand_grid(params=[{"value": 1}], seed=5)
        store = ArtifactCache(root=tmp_path)
        opaque = {"model": object()}
        runner = SweepRunner(workers=1, shard=ShardSpec(0, 1), shard_store=store)
        with pytest.raises(ValueError, match="sweep_label"):
            runner.map(_worker, tasks, shared=opaque)
        # an explicit label restores the contract: the caller vouches that
        # the label uniquely identifies this configuration
        labelled = self._runner(store, ShardSpec(0, 1), label="opaque-config")
        assert labelled.map(_worker, tasks, shared=opaque) is not None

    def test_stream_progress_counts_whole_slice_on_resume(self, tmp_path):
        """A resumed shard's progress spans the slice, recalled tasks included."""
        tasks = expand_grid(params=[{"value": v} for v in range(10)], seed=6)
        store = ArtifactCache(root=tmp_path)
        spec = ShardSpec(0, 2)
        mine = len(spec.partition(tasks))
        try:
            self._runner(store, spec).map(_worker, tasks, shared=None)
        except ShardIncompleteError:
            pass
        events = []
        resumed = SweepRunner(
            workers=1,
            shard=spec,
            shard_store=store,
            sweep_label="mini",
            progress=lambda task, result, done, total: events.append((done, total)),
        )
        try:
            resumed.map(_worker, tasks, shared=None)
        except ShardIncompleteError:
            pass
        # nothing was recomputed, yet every recalled task reported progress,
        # counting up over the shard's slice — not a [1/1]-style pending view
        assert resumed.tasks_run == 0
        assert events == [(i + 1, mine) for i in range(mine)]


class TestShardedDriver:
    """A real driver, split two ways, must reproduce the unsharded table."""

    def test_fig9a_two_shards_match_unsharded(self, tmp_path):
        from repro.experiments import run_fig9a

        voltages = np.array([0.42, 0.46, 0.50, 0.54])
        kwargs = dict(voltages=voltages, num_words=128)
        reference = run_fig9a(runner=SweepRunner(workers=1), **kwargs)

        store = ArtifactCache(root=tmp_path)
        results = {}
        for index in range(2):
            runner = SweepRunner(
                workers=1,
                shard=ShardSpec(index, 2),
                shard_store=store,
                sweep_label="fig9a-test",
            )
            try:
                results[index] = run_fig9a(runner=runner, **kwargs)
            except ShardIncompleteError:
                results[index] = None
        merged = next(r for r in (results[1], results[0]) if r is not None)
        assert [
            (p.voltage, p.measured_rate, p.predicted_rate, p.word_rate)
            for p in merged.points
        ] == [
            (p.voltage, p.measured_rate, p.predicted_rate, p.word_rate)
            for p in reference.points
        ]

    def test_fig12_rejects_sharding(self):
        from repro.experiments.fig12_temperature import run_fig12

        runner = SweepRunner(shard=ShardSpec(0, 2))
        with pytest.raises(ValueError, match="cannot be sharded"):
            run_fig12(runner=runner)
