"""Unit tests for repro.nn.layers and repro.nn.network."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import DenseLayer, Network, Topology, parse_topology


class TestDenseLayer:
    def test_forward_shape(self):
        layer = DenseLayer(4, 3, rng=np.random.default_rng(0))
        out = layer.forward(np.zeros((5, 4)))
        assert out.shape == (5, 3)

    def test_forward_accepts_single_sample(self):
        layer = DenseLayer(4, 2, rng=np.random.default_rng(0))
        out = layer.forward(np.zeros(4))
        assert out.shape == (1, 2)

    def test_forward_rejects_wrong_width(self):
        layer = DenseLayer(4, 2, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            layer.forward(np.zeros((3, 5)))

    def test_identity_activation_is_affine(self):
        layer = DenseLayer(3, 2, activation="identity", rng=np.random.default_rng(0))
        x = np.array([[1.0, -2.0, 0.5]])
        expected = x @ layer.weights + layer.bias
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(ValueError):
            DenseLayer(0, 3)

    def test_backward_requires_forward(self):
        layer = DenseLayer(3, 2, rng=np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))

    def test_backward_gradient_shapes(self):
        layer = DenseLayer(3, 2, rng=np.random.default_rng(0))
        layer.forward(np.ones((4, 3)), training=True)
        grad_in = layer.backward(np.ones((4, 2)))
        assert grad_in.shape == (4, 3)
        assert layer.grad_weights.shape == (3, 2)
        assert layer.grad_bias.shape == (2,)

    def test_weight_gradient_finite_difference(self):
        rng = np.random.default_rng(3)
        layer = DenseLayer(5, 4, activation="sigmoid", rng=rng)
        x = rng.normal(size=(6, 5))
        target = rng.random((6, 4))

        def loss_for(weights):
            saved = layer.weights
            layer.weights = weights
            out = layer.forward(x, training=True)
            layer.weights = saved
            return float(np.sum((out - target) ** 2))

        out = layer.forward(x, training=True)
        layer.backward(2.0 * (out - target))
        analytic = layer.grad_weights.copy()
        eps = 1e-6
        for i, j in [(0, 0), (2, 3), (4, 1)]:
            perturbed = layer.weights.copy()
            perturbed[i, j] += eps
            numeric = (loss_for(perturbed) - loss_for(layer.weights)) / eps
            assert analytic[i, j] == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    def test_effective_weights_used_for_compute(self):
        layer = DenseLayer(2, 1, activation="identity", rng=np.random.default_rng(0))
        layer.weights = np.array([[1.0], [1.0]])
        layer.bias = np.array([0.0])
        x = np.array([[1.0, 1.0]])
        assert layer.forward(x)[0, 0] == pytest.approx(2.0)
        layer.set_effective(np.array([[0.0], [0.0]]), np.array([5.0]))
        assert layer.forward(x)[0, 0] == pytest.approx(5.0)
        layer.clear_effective()
        assert layer.forward(x)[0, 0] == pytest.approx(2.0)

    def test_set_effective_shape_check(self):
        layer = DenseLayer(2, 2, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            layer.set_effective(np.zeros((3, 2)), None)

    def test_num_parameters(self):
        layer = DenseLayer(10, 4, rng=np.random.default_rng(0))
        assert layer.num_parameters == 10 * 4 + 4


class TestTopologyParsing:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("100-32-10", (100, 32, 10)),
            ("2-16-2", (2, 16, 2)),
            ([6, 16, 1], (6, 16, 1)),
            ((400, 8, 1), (400, 8, 1)),
        ],
    )
    def test_valid(self, spec, expected):
        assert parse_topology(spec) == expected

    @pytest.mark.parametrize("spec", ["", "100", "a-b", "10-0-5", [5]])
    def test_invalid(self, spec):
        with pytest.raises(ValueError):
            parse_topology(spec)

    def test_topology_counts(self):
        topology = Topology("100-32-10")
        assert topology.num_weights == 100 * 32 + 32 * 10
        assert topology.num_parameters == topology.num_weights + 32 + 10
        assert topology.name == "100-32-10"


class TestNetwork:
    def test_layer_construction(self):
        net = Network("4-8-3", seed=0)
        assert len(net.layers) == 2
        assert net.layers[0].in_features == 4
        assert net.layers[1].out_features == 3

    def test_output_activation_applied_to_last_layer_only(self):
        net = Network("4-8-3", hidden_activation="sigmoid", output_activation="identity", seed=0)
        assert net.layers[0].activation.name == "sigmoid"
        assert net.layers[1].activation.name == "identity"

    def test_forward_shape(self):
        net = Network("4-8-3", seed=0)
        assert net.predict(np.zeros((10, 4))).shape == (10, 3)

    def test_seed_reproducibility(self):
        a = Network("5-7-2", seed=99)
        b = Network("5-7-2", seed=99)
        for la, lb in zip(a.layers, b.layers):
            np.testing.assert_array_equal(la.weights, lb.weights)

    def test_get_set_weights_roundtrip(self):
        a = Network("5-7-2", seed=1)
        b = Network("5-7-2", seed=2)
        b.set_weights(a.get_weights())
        x = np.random.default_rng(0).normal(size=(3, 5))
        np.testing.assert_allclose(a.predict(x), b.predict(x))

    def test_set_weights_shape_mismatch(self):
        net = Network("5-7-2", seed=1)
        other = Network("5-6-2", seed=1)
        with pytest.raises(ValueError):
            net.set_weights(other.get_weights())

    def test_copy_is_independent(self):
        net = Network("3-4-2", seed=1)
        clone = net.copy()
        clone.layers[0].weights += 1.0
        assert not np.allclose(net.layers[0].weights, clone.layers[0].weights)

    def test_num_parameters_matches_topology(self):
        net = Network("100-32-10", seed=0)
        assert net.num_parameters == Topology("100-32-10").num_parameters
        assert net.num_weights == Topology("100-32-10").num_weights

    def test_backward_computes_loss_and_gradients(self):
        net = Network("4-6-2", loss="mse", seed=3)
        x = np.random.default_rng(0).normal(size=(8, 4))
        t = np.random.default_rng(1).random((8, 2))
        predictions = net.forward(x, training=True)
        loss = net.backward(predictions, t)
        assert loss > 0
        for layer in net.layers:
            assert np.any(layer.grad_weights != 0.0)

    def test_full_network_gradient_finite_difference(self):
        net = Network("3-5-2", loss="mse", output_activation="sigmoid", seed=7)
        rng = np.random.default_rng(5)
        x = rng.normal(size=(4, 3))
        t = rng.random((4, 2))
        predictions = net.forward(x, training=True)
        net.backward(predictions, t)
        layer = net.layers[0]
        analytic = layer.grad_weights[1, 2]
        eps = 1e-6
        layer.weights[1, 2] += eps
        loss_plus = net.loss.value(net.predict(x), t)
        layer.weights[1, 2] -= 2 * eps
        loss_minus = net.loss.value(net.predict(x), t)
        layer.weights[1, 2] += eps
        numeric = (loss_plus - loss_minus) / (2 * eps)
        assert analytic == pytest.approx(numeric, rel=1e-4, abs=1e-8)

    def test_softmax_cross_entropy_fusion_gradient(self):
        net = Network("3-4-3", loss="cross_entropy", output_activation="softmax", seed=2)
        rng = np.random.default_rng(4)
        x = rng.normal(size=(5, 3))
        labels = rng.integers(0, 3, size=5)
        t = np.eye(3)[labels]
        predictions = net.forward(x, training=True)
        net.backward(predictions, t)
        layer = net.layers[1]
        analytic = layer.grad_weights[0, 1]
        eps = 1e-6
        layer.weights[0, 1] += eps
        loss_plus = net.loss.value(net.predict(x), t)
        layer.weights[0, 1] -= 2 * eps
        loss_minus = net.loss.value(net.predict(x), t)
        layer.weights[0, 1] += eps
        assert analytic == pytest.approx((loss_plus - loss_minus) / (2 * eps), rel=1e-3)

    def test_clear_effective_propagates(self):
        net = Network("3-4-2", seed=0)
        for layer in net.layers:
            layer.set_effective(np.zeros_like(layer.weights), np.zeros_like(layer.bias))
        net.clear_effective()
        assert all(layer.effective_weights is None for layer in net.layers)
