"""Unit tests for repro.nn.losses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    BinaryCrossEntropyLoss,
    CrossEntropyLoss,
    MeanSquaredError,
    get_loss,
)


class TestMeanSquaredError:
    def test_zero_for_perfect_predictions(self):
        p = np.array([[0.2, 0.8], [0.5, 0.5]])
        assert MeanSquaredError().value(p, p) == 0.0

    def test_known_value(self):
        loss = MeanSquaredError()
        p = np.array([[1.0, 0.0]])
        t = np.array([[0.0, 0.0]])
        assert loss.value(p, t) == pytest.approx(0.5)

    def test_gradient_matches_finite_difference(self):
        loss = MeanSquaredError()
        rng = np.random.default_rng(0)
        p = rng.random((4, 3))
        t = rng.random((4, 3))
        grad = loss.gradient(p, t)
        eps = 1e-6
        for i in range(4):
            for j in range(3):
                p2 = p.copy()
                p2[i, j] += eps
                numeric = (loss.value(p2, t) - loss.value(p, t)) / eps
                assert grad[i, j] == pytest.approx(numeric, abs=1e-6)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            MeanSquaredError().value(np.zeros((2, 3)), np.zeros((2, 2)))

    def test_accepts_1d_inputs(self):
        assert MeanSquaredError().value(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 0.0


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss = CrossEntropyLoss()
        p = np.array([[0.999, 0.0005, 0.0005]])
        t = np.array([[1.0, 0.0, 0.0]])
        assert loss.value(p, t) < 0.01

    def test_wrong_prediction_high_loss(self):
        loss = CrossEntropyLoss()
        p = np.array([[0.001, 0.999]])
        t = np.array([[1.0, 0.0]])
        assert loss.value(p, t) > 3.0

    def test_fused_softmax_gradient(self):
        loss = CrossEntropyLoss()
        p = np.array([[0.7, 0.2, 0.1], [0.1, 0.8, 0.1]])
        t = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        np.testing.assert_allclose(loss.gradient(p, t), (p - t) / 2.0)

    def test_fuses_with_softmax_flag(self):
        assert CrossEntropyLoss().fuses_with_softmax is True
        assert MeanSquaredError().fuses_with_softmax is False

    def test_handles_zero_probability_without_nan(self):
        loss = CrossEntropyLoss()
        value = loss.value(np.array([[0.0, 1.0]]), np.array([[1.0, 0.0]]))
        assert np.isfinite(value)


class TestBinaryCrossEntropy:
    def test_value_is_mean_over_batch_sum_over_outputs(self):
        loss = BinaryCrossEntropyLoss()
        p = np.array([[0.9, 0.1], [0.8, 0.2]])
        t = np.array([[1.0, 0.0], [1.0, 0.0]])
        expected = np.mean(
            [-np.log(0.9) - np.log(0.9), -np.log(0.8) - np.log(0.8)]
        )
        assert loss.value(p, t) == pytest.approx(expected)

    def test_gradient_matches_finite_difference(self):
        loss = BinaryCrossEntropyLoss()
        rng = np.random.default_rng(3)
        p = rng.uniform(0.05, 0.95, size=(5, 4))
        t = (rng.random((5, 4)) > 0.5).astype(float)
        grad = loss.gradient(p, t)
        eps = 1e-7
        for i in range(5):
            for j in range(4):
                p2 = p.copy()
                p2[i, j] += eps
                numeric = (loss.value(p2, t) - loss.value(p, t)) / eps
                assert grad[i, j] == pytest.approx(numeric, rel=1e-3)

    def test_single_output_case(self):
        loss = BinaryCrossEntropyLoss()
        p = np.array([[0.5]])
        t = np.array([[1.0]])
        assert loss.value(p, t) == pytest.approx(-np.log(0.5))

    def test_clipping_prevents_infinities(self):
        loss = BinaryCrossEntropyLoss()
        assert np.isfinite(loss.value(np.array([[0.0]]), np.array([[1.0]])))
        assert np.all(np.isfinite(loss.gradient(np.array([[0.0]]), np.array([[1.0]]))))


class TestRegistry:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("mse", MeanSquaredError),
            ("cross_entropy", CrossEntropyLoss),
            ("binary_cross_entropy", BinaryCrossEntropyLoss),
        ],
    )
    def test_lookup(self, name, cls):
        assert isinstance(get_loss(name), cls)

    def test_instance_passthrough(self):
        loss = MeanSquaredError()
        assert get_loss(loss) is loss

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            get_loss("nope")
