"""Unit tests for injection masking (repro.matic.masking)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator import MicrocodeCompiler
from repro.matic import FaultMaskSet, LayerMasks, apply_masks_to_values
from repro.nn import Network
from repro.quant import FixedPointFormat, WeightQuantizer
from repro.sram import BitFault, FaultMap, WeightMemorySystem


@pytest.fixture()
def network():
    return Network("6-8-3", seed=0)


@pytest.fixture()
def quantizer():
    return WeightQuantizer(total_bits=16, frac_bits=13)


class TestApplyMasksToValues:
    def test_identity_masks_equal_quantization(self):
        fmt = FixedPointFormat(16, 13)
        values = np.array([0.1, -0.7, 2.3])
        and_mask = np.full(3, 0xFFFF, dtype=np.uint64)
        or_mask = np.zeros(3, dtype=np.uint64)
        np.testing.assert_allclose(
            apply_masks_to_values(values, and_mask, or_mask, fmt), fmt.quantize(values)
        )

    def test_stuck_sign_bit_forces_negative(self):
        fmt = FixedPointFormat(16, 13)
        values = np.array([1.0])
        and_mask = np.array([0xFFFF], dtype=np.uint64)
        or_mask = np.array([1 << 15], dtype=np.uint64)
        out = apply_masks_to_values(values, and_mask, or_mask, fmt)
        assert out[0] < 0

    def test_cleared_bits_reduce_magnitude(self):
        fmt = FixedPointFormat(8, 0)
        values = np.array([127.0])
        and_mask = np.array([0x0F], dtype=np.uint64)
        or_mask = np.array([0], dtype=np.uint64)
        out = apply_masks_to_values(values, and_mask, or_mask, fmt)
        assert out[0] == 15.0


class TestLayerMasks:
    def test_identity_counts_zero_faults(self):
        masks = LayerMasks.identity((4, 3), (3,), word_bits=16)
        assert masks.num_faulty_weight_bits == 0

    def test_fault_counting(self):
        masks = LayerMasks.identity((2, 2), (2,), word_bits=8)
        masks.weight_or[0, 0] = 0b11  # two stuck-at-1 bits
        masks.weight_and[1, 1] = 0xFF ^ 0b100  # one stuck-at-0 bit
        assert masks.num_faulty_weight_bits == 3

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LayerMasks(
                weight_and=np.zeros((2, 2), dtype=np.uint64),
                weight_or=np.zeros((2, 3), dtype=np.uint64),
                bias_and=np.zeros(2, dtype=np.uint64),
                bias_or=np.zeros(2, dtype=np.uint64),
            )


class TestFaultMaskSet:
    def test_identity_set(self, network, quantizer):
        masks = FaultMaskSet.identity(network, quantizer)
        assert len(masks) == 2
        assert masks.fault_rate() == 0.0
        masks.install(network)
        for layer in network.layers:
            np.testing.assert_allclose(
                layer.effective_weights, quantizer.format_for(layer.weights).quantize(layer.weights)
                if quantizer.frac_bits is None
                else FixedPointFormat(16, 13).quantize(layer.weights),
            )
        network.clear_effective()

    def test_random_rate_accounting(self, network, quantizer):
        masks = FaultMaskSet.random(network, quantizer, fault_rate=0.1, rng=3)
        assert masks.fault_rate() == pytest.approx(0.1, abs=0.03)
        assert masks.total_faulty_bits > 0

    def test_random_zero_rate_is_identity(self, network, quantizer):
        masks = FaultMaskSet.random(network, quantizer, 0.0, rng=0)
        assert masks.total_faulty_bits == 0

    def test_random_invalid_rate(self, network, quantizer):
        with pytest.raises(ValueError):
            FaultMaskSet.random(network, quantizer, 1.5)

    def test_install_depth_mismatch(self, network, quantizer):
        masks = FaultMaskSet.identity(network, quantizer)
        other = Network("6-8-4-3", seed=0)
        with pytest.raises(ValueError):
            masks.install(other)

    def test_install_changes_effective_only(self, network, quantizer):
        masks = FaultMaskSet.random(network, quantizer, 0.2, rng=1)
        master_before = [layer.weights.copy() for layer in network.layers]
        masks.install(network)
        for layer, before in zip(network.layers, master_before):
            np.testing.assert_array_equal(layer.weights, before)
            assert layer.effective_weights is not None
        network.clear_effective()

    def test_masked_values_respect_masks(self, network, quantizer):
        masks = FaultMaskSet.random(network, quantizer, 0.3, rng=5)
        weights, bias = masks.masked_layer_parameters(network, 0)
        fmt = masks.layer_formats[0].weight_format
        words = fmt.float_to_word(weights)
        layer_masks = masks.layer_masks[0]
        # every stuck-at-1 bit is set, every stuck-at-0 bit is cleared
        assert np.all((words & layer_masks.weight_or) == layer_masks.weight_or)
        assert np.all((words | layer_masks.weight_and) == layer_masks.weight_and)

    def test_from_fault_maps_roundtrip_with_hardware(self, network, quantizer):
        """Masks derived from fault maps predict exactly what the SRAM returns."""
        memory = WeightMemorySystem.build(4, 64, 16, seed=17)
        compiler = MicrocodeCompiler(num_pes=4, words_per_bank=64)
        program = compiler.compile(network, quantizer)
        program.placement.store(memory, quantizer.quantize_network(network))

        voltage = 0.46
        fault_maps = [bank.fault_map_at(voltage) for bank in memory]
        mask_set = FaultMaskSet.from_fault_maps(
            network, quantizer, program.placement, fault_maps
        )
        predicted_weights, predicted_bias = mask_set.masked_layer_parameters(network, 0)

        weight_words, bias_words = program.placement.load_layer_words(
            memory, 0, voltage=voltage
        )
        fmt = mask_set.layer_formats[0]
        np.testing.assert_allclose(
            predicted_weights, fmt.weight_format.word_to_float(weight_words)
        )
        np.testing.assert_allclose(
            predicted_bias, fmt.bias_format.word_to_float(bias_words)
        )

    def test_description_carried(self, network, quantizer):
        masks = FaultMaskSet.random(network, quantizer, 0.1, rng=0, description="test masks")
        assert masks.description == "test masks"

    @settings(max_examples=20, deadline=None)
    @given(rate=st.floats(0.0, 0.6), seed=st.integers(0, 50))
    def test_masked_values_stay_in_format_range(self, rate, seed):
        network = Network("5-4-2", seed=1)
        quantizer = WeightQuantizer(total_bits=12, frac_bits=8)
        masks = FaultMaskSet.random(network, quantizer, rate, rng=seed)
        for index in range(len(network.layers)):
            weights, bias = masks.masked_layer_parameters(network, index)
            fmt = masks.layer_formats[index].weight_format
            assert np.all(weights <= fmt.max_value) and np.all(weights >= fmt.min_value)


class TestVectorizedHelpers:
    """The vectorized popcount / random-mask paths must match their
    pre-vectorization per-bit reference loops exactly."""

    @staticmethod
    def _reference_popcount(a: np.ndarray) -> int:
        total = 0
        a = a.copy()
        while np.any(a):
            total += int(np.sum(a & np.uint64(1)))
            a >>= np.uint64(1)
        return total

    @staticmethod
    def _reference_random_masks(shape, word_bits, fault_rate, stuck_one_probability, rng, full):
        and_mask = np.full(shape, full, dtype=np.uint64)
        or_mask = np.zeros(shape, dtype=np.uint64)
        stuck = rng.random(shape + (word_bits,)) < fault_rate
        stuck_one = rng.random(shape + (word_bits,)) < stuck_one_probability
        for bit in range(word_bits):
            bit_mask = np.uint64(1 << bit)
            clear_here = stuck[..., bit] & ~stuck_one[..., bit]
            set_here = stuck[..., bit] & stuck_one[..., bit]
            and_mask[clear_here] &= np.uint64(full ^ bit_mask)
            or_mask[set_here] |= bit_mask
        return and_mask, or_mask

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        word_bits=st.sampled_from([1, 8, 16, 22, 63, 64]),
        size=st.integers(0, 40),
    )
    def test_popcount_matches_reference(self, seed, word_bits, size):
        from repro.sram.bitops import popcount

        rng = np.random.default_rng(seed)
        high = (1 << word_bits) - 1
        words = rng.integers(0, high, size=size, endpoint=True, dtype=np.uint64)
        assert popcount(words) == self._reference_popcount(words)

    def test_popcount_all_64_bits(self):
        from repro.sram.bitops import popcount

        assert popcount(np.array([0xFFFFFFFFFFFFFFFF], dtype=np.uint64)) == 64
        assert popcount(np.zeros(5, dtype=np.uint64)) == 0

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        rows=st.integers(1, 6),
        cols=st.integers(1, 6),
        word_bits=st.sampled_from([1, 8, 16, 24]),
        rate=st.floats(0.0, 1.0),
        stuck_one=st.floats(0.0, 1.0),
    )
    def test_random_masks_match_reference(self, seed, rows, cols, word_bits, rate, stuck_one):
        from repro.matic.masking import _random_masks

        full = np.uint64((1 << word_bits) - 1)
        shape = (rows, cols)
        vec_and, vec_or = _random_masks(
            shape, word_bits, rate, stuck_one, np.random.default_rng(seed), full
        )
        ref_and, ref_or = self._reference_random_masks(
            shape, word_bits, rate, stuck_one, np.random.default_rng(seed), full
        )
        np.testing.assert_array_equal(vec_and, ref_and)
        np.testing.assert_array_equal(vec_or, ref_or)
