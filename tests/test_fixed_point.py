"""Unit and property-based tests for repro.quant.fixed_point."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import FixedPointFormat


class TestFormatProperties:
    def test_default_format(self):
        fmt = FixedPointFormat()
        assert fmt.total_bits == 16
        assert fmt.frac_bits == 12
        assert fmt.scale == 2.0**-12

    def test_ranges(self):
        fmt = FixedPointFormat(8, 4)
        assert fmt.min_code == -128
        assert fmt.max_code == 127
        assert fmt.min_value == -8.0
        assert fmt.max_value == pytest.approx(127 / 16)

    def test_word_mask(self):
        assert FixedPointFormat(8, 4).word_mask == 0xFF
        assert FixedPointFormat(16, 12).word_mask == 0xFFFF

    @pytest.mark.parametrize("total,frac", [(1, 0), (65, 10), (8, 8), (8, -1)])
    def test_invalid_parameters(self, total, frac):
        with pytest.raises(ValueError):
            FixedPointFormat(total, frac)

    def test_describe(self):
        assert FixedPointFormat(16, 12).describe() == "Q3.12 (16-bit)"

    def test_for_range_picks_max_resolution(self):
        fmt = FixedPointFormat.for_range(3.5, total_bits=16)
        assert fmt.frac_bits == 13
        assert fmt.max_value >= 3.5
        fmt = FixedPointFormat.for_range(0.9, total_bits=16)
        assert fmt.frac_bits == 15

    def test_for_range_invalid(self):
        with pytest.raises(ValueError):
            FixedPointFormat.for_range(0.0)


class TestQuantization:
    def test_exact_grid_values_are_preserved(self):
        fmt = FixedPointFormat(16, 8)
        values = np.array([0.0, 1.0, -1.0, 0.5, 127.99609375])
        np.testing.assert_allclose(fmt.quantize(values), values)

    def test_rounding_to_nearest(self):
        fmt = FixedPointFormat(16, 2)  # LSB = 0.25
        np.testing.assert_allclose(fmt.quantize(np.array([0.1, 0.13, 0.3])), [0.0, 0.25, 0.25])

    def test_saturation(self):
        fmt = FixedPointFormat(8, 4)
        np.testing.assert_allclose(
            fmt.quantize(np.array([100.0, -100.0])), [fmt.max_value, fmt.min_value]
        )

    def test_quantization_error_bound(self):
        fmt = FixedPointFormat(16, 10)
        values = np.linspace(-10, 10, 1001)
        in_range = values[(values > fmt.min_value) & (values < fmt.max_value)]
        errors = fmt.quantization_error(in_range)
        assert np.all(np.abs(errors) <= fmt.scale / 2 + 1e-12)

    def test_quantize_to_code_type_and_range(self):
        fmt = FixedPointFormat(12, 6)
        codes = fmt.quantize_to_code(np.array([0.5, -0.5, 1000.0]))
        assert codes.dtype == np.int64
        assert codes.max() <= fmt.max_code and codes.min() >= fmt.min_code


class TestBitPacking:
    def test_word_roundtrip_signed(self):
        fmt = FixedPointFormat(16, 12)
        codes = np.array([-1, 0, 1, fmt.min_code, fmt.max_code])
        np.testing.assert_array_equal(fmt.word_to_code(fmt.code_to_word(codes)), codes)

    def test_negative_one_is_all_ones(self):
        fmt = FixedPointFormat(8, 0)
        assert fmt.code_to_word(np.array([-1]))[0] == 0xFF

    def test_out_of_range_code_raises(self):
        fmt = FixedPointFormat(8, 0)
        with pytest.raises(ValueError):
            fmt.code_to_word(np.array([200]))

    def test_bits_roundtrip(self):
        fmt = FixedPointFormat(16, 12)
        words = np.array([0x0000, 0xFFFF, 0x8001, 0x1234], dtype=np.uint64)
        bits = fmt.word_to_bits(words)
        assert bits.shape == (4, 16)
        np.testing.assert_array_equal(fmt.bits_to_word(bits), words)

    def test_bit_order_lsb_first(self):
        fmt = FixedPointFormat(8, 0)
        bits = fmt.word_to_bits(np.array([0b00000010], dtype=np.uint64))
        assert bits[0, 1] == 1
        assert bits[0, 0] == 0

    def test_bits_to_word_wrong_width(self):
        fmt = FixedPointFormat(8, 0)
        with pytest.raises(ValueError):
            fmt.bits_to_word(np.zeros((2, 7), dtype=np.uint64))

    def test_float_word_roundtrip(self):
        fmt = FixedPointFormat(16, 13)
        values = np.array([0.125, -2.5, 3.99987793])
        decoded = fmt.word_to_float(fmt.float_to_word(values))
        np.testing.assert_allclose(decoded, values, atol=fmt.scale / 2)


class TestWideFormats:
    """Regression tests for formats wider than float64's 53-bit mantissa.

    Clipping in the float domain silently corrupted codes at 64 bits:
    ``float(max_code)`` rounds up to ``2**63``, and casting that back to
    int64 overflows to the *minimum* code.
    """

    def test_64bit_saturation_is_exact(self):
        fmt = FixedPointFormat(total_bits=64, frac_bits=0)
        codes = fmt.quantize_to_code(np.array([1e30, -1e30]))
        assert codes.dtype == np.int64
        assert codes[0] == fmt.max_code == 2**63 - 1
        assert codes[1] == fmt.min_code == -(2**63)

    def test_64bit_in_range_values_unclipped(self):
        fmt = FixedPointFormat(total_bits=64, frac_bits=0)
        # the largest float64 below 2**63 is exactly representable in int64
        below = float(np.nextafter(2.0**63, 0.0))
        codes = fmt.quantize_to_code(np.array([below, -below, 12345.0]))
        assert codes[0] == int(below)
        assert codes[1] == -int(below)
        assert codes[2] == 12345

    def test_64bit_word_roundtrip(self):
        fmt = FixedPointFormat(total_bits=64, frac_bits=0)
        codes = np.array([fmt.min_code, -1, 0, 1, fmt.max_code], dtype=np.int64)
        words = fmt.code_to_word(codes)
        assert words.dtype == np.uint64
        assert int(words[0]) == 2**63
        assert int(words[1]) == 2**64 - 1
        np.testing.assert_array_equal(fmt.word_to_code(words), codes)

    def test_64bit_bit_packing_roundtrip(self):
        fmt = FixedPointFormat(total_bits=64, frac_bits=0)
        words = np.array([0, 1, 2**63, 2**64 - 1], dtype=np.uint64)
        bits = fmt.word_to_bits(words)
        assert bits.shape == (4, 64)
        np.testing.assert_array_equal(fmt.bits_to_word(bits), words)

    @pytest.mark.parametrize("total_bits", [54, 60, 63, 64])
    def test_wide_saturation_never_wraps(self, total_bits):
        fmt = FixedPointFormat(total_bits=total_bits, frac_bits=0)
        huge = np.array([1e300, -1e300, float(2**total_bits)])
        codes = fmt.quantize_to_code(huge)
        assert codes[0] == fmt.max_code
        assert codes[1] == fmt.min_code
        assert codes[2] == fmt.max_code

    def test_narrow_formats_unchanged(self):
        fmt = FixedPointFormat(16, 12)
        values = np.array([-10.0, -1.0, -0.25, 0.0, 0.25, 1.0, 10.0])
        codes = fmt.quantize_to_code(values)
        expected = np.clip(
            np.sign(values / fmt.scale) * np.floor(np.abs(values / fmt.scale) + 0.5),
            fmt.min_code,
            fmt.max_code,
        ).astype(np.int64)
        np.testing.assert_array_equal(codes, expected)


class TestHypothesisProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        total=st.integers(4, 24),
        values=st.lists(st.floats(-1000, 1000), min_size=1, max_size=32),
    )
    def test_quantize_is_idempotent(self, total, values):
        fmt = FixedPointFormat(total, total // 2)
        once = fmt.quantize(np.array(values))
        twice = fmt.quantize(once)
        np.testing.assert_allclose(once, twice)

    @settings(max_examples=100, deadline=None)
    @given(
        total=st.integers(4, 24),
        frac_fraction=st.floats(0.0, 0.99),
        values=st.lists(st.floats(-100, 100), min_size=1, max_size=32),
    )
    def test_word_roundtrip_preserves_quantized_value(self, total, frac_fraction, values):
        frac = int(frac_fraction * total)
        fmt = FixedPointFormat(total, frac)
        arr = np.array(values)
        quantized = fmt.quantize(arr)
        roundtrip = fmt.word_to_float(fmt.float_to_word(arr))
        np.testing.assert_allclose(roundtrip, quantized)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(-8, 8), min_size=1, max_size=64))
    def test_quantization_error_below_one_lsb(self, values):
        fmt = FixedPointFormat(16, 12)
        arr = np.clip(np.array(values), fmt.min_value, fmt.max_value)
        errors = np.abs(arr - fmt.quantize(arr))
        assert np.all(errors <= fmt.scale)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 2**16 - 1))
    def test_word_code_word_identity(self, word):
        fmt = FixedPointFormat(16, 12)
        words = np.array([word], dtype=np.uint64)
        assert fmt.code_to_word(fmt.word_to_code(words))[0] == word

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(-1000, 1000), min_size=1, max_size=16))
    def test_quantize_is_monotone(self, values):
        fmt = FixedPointFormat(12, 6)
        arr = np.sort(np.array(values))
        quantized = fmt.quantize(arr)
        assert np.all(np.diff(quantized) >= -1e-12)
