"""Property-based tests for the shared word↔bit conversions (sram/bitops).

Every subsystem that touches SRAM contents routes through
:func:`~repro.sram.bitops.pack_bits` / :func:`~repro.sram.bitops.unpack_words`
/ :func:`~repro.sram.bitops.popcount`, so these helpers get the strongest
coverage in the suite: hypothesis drives arbitrary shapes and word widths
(including the full 64-bit boundary, where a naive ``1 << bits`` or a signed
intermediate overflows), and every property is checked against a slow,
obviously-correct pure-Python reference.

``derandomize=True`` keeps CI deterministic: the examples are drawn from a
fixed seed, so a failure here always reproduces.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sram.bitops import pack_bits, popcount, unpack_words

PROPERTY_SETTINGS = settings(max_examples=80, deadline=None, derandomize=True)


@st.composite
def words_with_width(draw):
    """An arbitrary-shape uint64 array plus a word width its values fit in."""
    word_bits = draw(st.integers(min_value=1, max_value=64))
    shape = draw(
        st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=3)
    )
    count = int(np.prod(shape))
    limit = (1 << word_bits) - 1
    values = draw(
        st.lists(
            # bias toward the boundaries, where packing bugs live
            st.one_of(
                st.integers(min_value=0, max_value=limit),
                st.sampled_from([0, 1, limit, max(limit - 1, 0), limit >> 1]),
            ),
            min_size=count,
            max_size=count,
        )
    )
    words = np.array(values, dtype=np.uint64).reshape(shape)
    return words, word_bits


@st.composite
def bit_matrices(draw):
    """An arbitrary ``(..., word_bits)`` 0/1 matrix, word_bits in 1..64."""
    word_bits = draw(st.integers(min_value=1, max_value=64))
    rows = draw(st.integers(min_value=1, max_value=12))
    bits = draw(
        st.lists(
            st.integers(min_value=0, max_value=1),
            min_size=rows * word_bits,
            max_size=rows * word_bits,
        )
    )
    return np.array(bits, dtype=np.uint8).reshape(rows, word_bits), word_bits


def reference_popcount(a: np.ndarray) -> int:
    return sum(int(x).bit_count() for x in np.asarray(a).ravel().tolist())


class TestRoundTrip:
    @PROPERTY_SETTINGS
    @given(words_with_width())
    def test_pack_inverts_unpack(self, case):
        words, word_bits = case
        assert np.array_equal(pack_bits(unpack_words(words, word_bits)), words)

    @PROPERTY_SETTINGS
    @given(bit_matrices())
    def test_unpack_inverts_pack(self, case):
        bits, word_bits = case
        assert np.array_equal(unpack_words(pack_bits(bits), word_bits), bits)

    @PROPERTY_SETTINGS
    @given(words_with_width())
    def test_unpack_matches_python_bit_extraction(self, case):
        words, word_bits = case
        unpacked = unpack_words(words, word_bits)
        assert unpacked.shape == words.shape + (word_bits,)
        assert unpacked.dtype == np.uint8
        for index in np.ndindex(words.shape):
            value = int(words[index])
            expected = [(value >> bit) & 1 for bit in range(word_bits)]
            assert unpacked[index].tolist() == expected  # LSB at index 0

    @PROPERTY_SETTINGS
    @given(bit_matrices())
    def test_pack_matches_python_accumulation(self, case):
        bits, word_bits = case
        packed = pack_bits(bits)
        assert packed.dtype == np.uint64
        for row, word in zip(bits, packed):
            expected = sum(int(b) << position for position, b in enumerate(row))
            assert int(word) == expected


class TestPopcount:
    @PROPERTY_SETTINGS
    @given(words_with_width())
    def test_matches_reference(self, case):
        words, _ = case
        assert popcount(words) == reference_popcount(words)

    @PROPERTY_SETTINGS
    @given(words_with_width())
    def test_consistent_with_unpack(self, case):
        words, word_bits = case
        assert popcount(words) == int(unpack_words(words, word_bits).sum())

    def test_empty_array(self):
        assert popcount(np.zeros((0,), dtype=np.uint64)) == 0

    @pytest.mark.parametrize(
        "dtype", [np.uint8, np.uint16, np.uint32, np.uint64]
    )
    def test_narrow_dtypes(self, dtype):
        values = np.array([0, 1, np.iinfo(dtype).max], dtype=dtype)
        assert popcount(values) == reference_popcount(values)


class TestSixtyFourBitBoundary:
    """The uint64 edge: top bit set, all bits set, and signed-overflow bait."""

    BOUNDARY_WORDS = np.array(
        [0, 1, 2**63 - 1, 2**63, 2**64 - 1, 0xAAAAAAAAAAAAAAAA, 0x5555555555555555],
        dtype=np.uint64,
    )

    def test_round_trip_at_full_width(self):
        assert np.array_equal(
            pack_bits(unpack_words(self.BOUNDARY_WORDS, 64)), self.BOUNDARY_WORDS
        )

    def test_top_bit_lands_in_last_column(self):
        bits = unpack_words(np.array([2**63], dtype=np.uint64), 64)
        assert bits[0, 63] == 1 and int(bits[0, :63].sum()) == 0

    def test_all_ones_word(self):
        bits = np.ones((1, 64), dtype=np.uint8)
        assert int(pack_bits(bits)[0]) == 2**64 - 1

    def test_popcount_at_boundary(self):
        assert popcount(self.BOUNDARY_WORDS) == reference_popcount(self.BOUNDARY_WORDS)

    @PROPERTY_SETTINGS
    @given(
        st.lists(
            st.integers(min_value=2**63, max_value=2**64 - 1), min_size=1, max_size=16
        )
    )
    def test_high_half_round_trip(self, values):
        words = np.array(values, dtype=np.uint64)
        assert np.array_equal(pack_bits(unpack_words(words, 64)), words)
        assert popcount(words) == reference_popcount(words)
