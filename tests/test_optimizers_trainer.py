"""Unit tests for repro.nn.optimizers and repro.nn.trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    Dataset,
    MomentumSGD,
    Network,
    Trainer,
    classification_error,
    get_optimizer,
    one_hot,
)


def quadratic_network():
    """A 1-parameter linear model we can reason about analytically."""
    net = Network("1-1", hidden_activation="identity", output_activation="identity", loss="mse", seed=0)
    net.layers[0].weights = np.array([[0.0]])
    net.layers[0].bias = np.array([0.0])
    return net


class TestOptimizers:
    def test_sgd_step_direction(self):
        net = quadratic_network()
        x, t = np.array([[1.0]]), np.array([[1.0]])
        predictions = net.forward(x, training=True)
        net.backward(predictions, t)
        SGD(learning_rate=0.5).step(net)
        # gradient of (w*1 - 1)^2 at w=0 is -2, so w moves to +1.0 with lr 0.5
        assert net.layers[0].weights[0, 0] == pytest.approx(1.0)

    def test_sgd_parameter_delta(self):
        delta = SGD(learning_rate=0.1).parameter_delta("w", np.array([2.0]))
        np.testing.assert_allclose(delta, [0.2])

    def test_momentum_accumulates(self):
        opt = MomentumSGD(learning_rate=0.1, momentum=0.9)
        g = np.array([1.0])
        first = opt.parameter_delta("w", g).copy()
        second = opt.parameter_delta("w", g).copy()
        assert second[0] == pytest.approx(first[0] * 1.9)

    def test_momentum_reset_clears_state(self):
        opt = MomentumSGD(learning_rate=0.1, momentum=0.9)
        opt.parameter_delta("w", np.array([1.0]))
        opt.reset()
        fresh = opt.parameter_delta("w", np.array([1.0]))
        assert fresh[0] == pytest.approx(0.1)

    def test_momentum_validates_coefficient(self):
        with pytest.raises(ValueError):
            MomentumSGD(momentum=1.0)

    def test_adam_bias_correction_first_step(self):
        opt = Adam(learning_rate=0.01)
        delta = opt.parameter_delta("w", np.array([0.5]))
        # first Adam step magnitude is ~learning_rate regardless of gradient scale
        assert abs(delta[0]) == pytest.approx(0.01, rel=1e-3)

    def test_adam_per_parameter_state(self):
        opt = Adam(learning_rate=0.01)
        opt.parameter_delta("a", np.array([1.0]))
        delta_b = opt.parameter_delta("b", np.array([1.0]))
        assert abs(delta_b[0]) == pytest.approx(0.01, rel=1e-3)

    def test_learning_rate_validation(self):
        for cls in (SGD, MomentumSGD, Adam):
            with pytest.raises(ValueError):
                cls(learning_rate=0.0)

    @pytest.mark.parametrize("name,cls", [("sgd", SGD), ("momentum", MomentumSGD), ("adam", Adam)])
    def test_registry(self, name, cls):
        assert isinstance(get_optimizer(name), cls)

    def test_registry_unknown(self):
        with pytest.raises(ValueError):
            get_optimizer("rmsprop")

    @pytest.mark.parametrize("optimizer", ["sgd", "momentum", "adam"])
    def test_all_optimizers_reduce_loss(self, optimizer, toy_dataset):
        net = Network("8-8-2", loss="binary_cross_entropy", seed=1)
        lr = 0.02 if optimizer == "adam" else 0.3
        trainer = Trainer(net, optimizer=optimizer, learning_rate=lr, epochs=10, seed=2)
        history = trainer.fit(toy_dataset)
        assert history.train_loss[-1] < history.train_loss[0]


class TestTrainer:
    def test_validation_history_recorded(self, toy_dataset):
        train = toy_dataset.subset(np.arange(0, 300))
        validation = toy_dataset.subset(np.arange(300, 400))
        net = Network("8-8-2", loss="binary_cross_entropy", seed=1)
        history = Trainer(net, epochs=5, learning_rate=0.3, seed=2).fit(train, validation)
        assert len(history.validation_loss) == history.epochs_run == 5

    def test_early_stopping_restores_best_weights(self, toy_dataset):
        train = toy_dataset.subset(np.arange(0, 300))
        validation = toy_dataset.subset(np.arange(300, 400))
        net = Network("8-16-2", loss="binary_cross_entropy", seed=1)
        trainer = Trainer(net, epochs=60, learning_rate=1.0, patience=3, seed=2)
        history = trainer.fit(train, validation)
        assert history.epochs_run <= 60
        # the network's validation loss equals the best recorded value
        best = min(history.validation_loss)
        current = net.evaluate_loss(validation.inputs, validation.targets)
        assert current == pytest.approx(best, rel=1e-6)

    def test_lr_decay_applied_per_epoch(self, toy_dataset):
        net = Network("8-8-2", loss="binary_cross_entropy", seed=1)
        trainer = Trainer(net, epochs=5, learning_rate=1.0, lr_decay=0.5, seed=2)
        trainer.fit(toy_dataset)
        assert trainer.optimizer.learning_rate == pytest.approx(1.0 * 0.5**5)

    def test_invalid_hyperparameters(self):
        net = Network("2-2", seed=0)
        with pytest.raises(ValueError):
            Trainer(net, batch_size=0)
        with pytest.raises(ValueError):
            Trainer(net, epochs=0)
        with pytest.raises(ValueError):
            Trainer(net, lr_decay=0.0)

    def test_training_learns_separable_problem(self, toy_dataset):
        net = Network("8-16-2", loss="binary_cross_entropy", seed=3)
        Trainer(net, learning_rate=0.3, epochs=40, seed=4).fit(toy_dataset)
        error = classification_error(net.predict(toy_dataset.inputs), toy_dataset.labels)
        assert error < 0.08

    def test_deterministic_given_seeds(self, toy_dataset):
        def run():
            net = Network("8-8-2", loss="binary_cross_entropy", seed=5)
            Trainer(net, learning_rate=0.3, epochs=5, seed=6).fit(toy_dataset)
            return net.predict(toy_dataset.inputs[:10])

        np.testing.assert_allclose(run(), run())

    def test_regression_training(self, toy_regression_dataset):
        net = Network(
            "4-8-1", output_activation="sigmoid", loss="mse", seed=2
        )
        history = Trainer(net, learning_rate=0.5, epochs=30, seed=3).fit(toy_regression_dataset)
        assert history.final_train_loss < 0.01
