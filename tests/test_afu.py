"""Unit tests for the activation function unit (PWL approximation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator import ActivationFunctionUnit, PiecewiseLinearFunction
from repro.nn import Sigmoid, Tanh


class TestPiecewiseLinearFunction:
    def test_exact_at_segment_edges(self):
        sigmoid = Sigmoid()
        pwl = PiecewiseLinearFunction(sigmoid.forward, (-8, 8), num_segments=16)
        edges = np.linspace(-8, 8, 17)
        np.testing.assert_allclose(pwl(edges), sigmoid.forward(edges), atol=1e-12)

    def test_saturation_outside_range(self):
        sigmoid = Sigmoid()
        pwl = PiecewiseLinearFunction(sigmoid.forward, (-8, 8), num_segments=16)
        assert pwl(np.array([-50.0]))[0] == pytest.approx(sigmoid.forward(np.array([-8.0]))[0])
        assert pwl(np.array([50.0]))[0] == pytest.approx(sigmoid.forward(np.array([8.0]))[0])

    def test_error_decreases_with_more_segments(self):
        sigmoid = Sigmoid()
        coarse = PiecewiseLinearFunction(sigmoid.forward, (-8, 8), num_segments=4)
        fine = PiecewiseLinearFunction(sigmoid.forward, (-8, 8), num_segments=32)
        assert fine.max_error(reference=sigmoid.forward) < coarse.max_error(
            reference=sigmoid.forward
        )

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PiecewiseLinearFunction(np.tanh, (2, 1))
        with pytest.raises(ValueError):
            PiecewiseLinearFunction(np.tanh, (-1, 1), num_segments=0)

    def test_max_error_requires_reference(self):
        pwl = PiecewiseLinearFunction(np.tanh, (-4, 4))
        with pytest.raises(ValueError):
            pwl.max_error()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(-20, 20), min_size=1, max_size=64))
    def test_sigmoid_pwl_error_bound(self, values):
        sigmoid = Sigmoid()
        pwl = PiecewiseLinearFunction(sigmoid.forward, (-8, 8), num_segments=16)
        x = np.array(values)
        error = np.abs(pwl(x) - sigmoid.forward(x))
        # 16-segment table keeps the approximation within ~1.2e-2 everywhere
        # (saturation adds the sigmoid tail value outside the covered range)
        assert np.all(error < 1.5e-2)


class TestActivationFunctionUnit:
    def test_supported_list(self):
        afu = ActivationFunctionUnit()
        assert set(afu.supported()) == {"identity", "relu", "sigmoid", "tanh", "softmax"}

    def test_relu_exact(self):
        afu = ActivationFunctionUnit()
        x = np.array([-2.0, 0.5])
        np.testing.assert_allclose(afu.apply("relu", x), [0.0, 0.5])

    def test_identity_and_softmax_passthrough(self):
        afu = ActivationFunctionUnit()
        x = np.array([[1.0, -2.0]])
        np.testing.assert_allclose(afu.apply("identity", x), x)
        np.testing.assert_allclose(afu.apply("softmax", x), x)

    def test_sigmoid_close_to_exact(self):
        afu = ActivationFunctionUnit()
        x = np.linspace(-6, 6, 101)
        np.testing.assert_allclose(afu.apply("sigmoid", x), Sigmoid().forward(x), atol=0.02)

    def test_tanh_close_to_exact(self):
        afu = ActivationFunctionUnit()
        x = np.linspace(-4, 4, 101)
        np.testing.assert_allclose(afu.apply("tanh", x), Tanh().forward(x), atol=0.05)

    def test_unknown_activation_raises(self):
        with pytest.raises(ValueError):
            ActivationFunctionUnit().apply("gelu", np.zeros(3))

    def test_approximation_error_reporting(self):
        afu = ActivationFunctionUnit(num_segments=16)
        assert afu.approximation_error("sigmoid") < 0.02
        assert afu.approximation_error("relu") == 0.0

    def test_more_segments_reduce_error(self):
        coarse = ActivationFunctionUnit(num_segments=8)
        fine = ActivationFunctionUnit(num_segments=64)
        assert fine.approximation_error("sigmoid") < coarse.approximation_error("sigmoid")
