"""Unit tests for the calibrated energy/frequency models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import (
    NOMINAL_OPERATING_POINT,
    PAPER_LOGIC_ANCHORS,
    PAPER_SRAM_ANCHORS,
    FrequencyModel,
    LogicEnergyModel,
    OperatingPoint,
    SnnacEnergyModel,
    SramEnergyModel,
)


class TestOperatingPoint:
    def test_validation(self):
        with pytest.raises(ValueError):
            OperatingPoint(0.0, 0.9, 1e6)
        with pytest.raises(ValueError):
            OperatingPoint(0.9, 0.9, 0.0)

    def test_nominal_constants(self):
        assert NOMINAL_OPERATING_POINT.logic_voltage == 0.9
        assert NOMINAL_OPERATING_POINT.frequency == 250e6


class TestFrequencyModel:
    def test_calibration_hits_anchors(self):
        model = FrequencyModel.calibrate((0.9, 250e6), (0.55, 17.8e6))
        assert float(model.fmax(0.9)) == pytest.approx(250e6, rel=1e-3)
        assert float(model.fmax(0.55)) == pytest.approx(17.8e6, rel=1e-3)

    def test_fmax_monotone_in_voltage(self):
        model = FrequencyModel.calibrate((0.9, 250e6), (0.55, 17.8e6))
        voltages = np.linspace(0.5, 1.1, 30)
        freqs = model.fmax(voltages)
        assert np.all(np.diff(freqs) > 0)

    def test_fmax_zero_below_threshold(self):
        model = FrequencyModel.calibrate((0.9, 250e6), (0.55, 17.8e6))
        assert float(model.fmax(model.threshold - 0.01)) == 0.0

    def test_min_voltage_for_inverts_fmax(self):
        model = FrequencyModel.calibrate((0.9, 250e6), (0.55, 17.8e6))
        voltage = model.min_voltage_for(100e6)
        assert float(model.fmax(voltage)) >= 100e6
        assert float(model.fmax(voltage - 0.01)) < 100e6

    def test_min_voltage_unreachable(self):
        model = FrequencyModel.calibrate((0.9, 250e6), (0.55, 17.8e6))
        with pytest.raises(ValueError):
            model.min_voltage_for(1e12)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FrequencyModel(scale=-1.0, threshold=0.4)
        with pytest.raises(ValueError):
            FrequencyModel.calibrate((0.9, 250e6), (0.9, 17.8e6))


class TestLogicEnergyModel:
    def test_calibration_reproduces_anchors(self):
        model = LogicEnergyModel.calibrate()
        for voltage, frequency, picojoules in PAPER_LOGIC_ANCHORS:
            energy = float(model.energy_per_cycle(voltage, frequency)) * 1e12
            assert energy == pytest.approx(picojoules, rel=0.01)

    def test_dynamic_scales_with_v_squared(self):
        model = LogicEnergyModel.calibrate()
        ratio = float(model.dynamic_energy(0.45) / model.dynamic_energy(0.9))
        assert ratio == pytest.approx(0.25, rel=1e-6)

    def test_leakage_energy_grows_at_low_frequency(self):
        model = LogicEnergyModel.calibrate()
        slow = float(model.leakage_energy(0.9, 1e6))
        fast = float(model.leakage_energy(0.9, 250e6))
        assert slow > fast

    def test_calibration_requires_two_anchors(self):
        with pytest.raises(ValueError):
            LogicEnergyModel.calibrate(anchors=((0.9, 250e6, 30.0),))

    def test_invalid_capacitance(self):
        with pytest.raises(ValueError):
            LogicEnergyModel(effective_capacitance=0.0)


class TestSramEnergyModel:
    def test_reproduces_anchors(self):
        model = SramEnergyModel()
        for voltage, frequency, picojoules in PAPER_SRAM_ANCHORS:
            energy = float(model.energy_per_cycle(voltage, frequency)) * 1e12
            assert energy == pytest.approx(picojoules, rel=0.01)

    def test_monotone_in_voltage(self):
        model = SramEnergyModel()
        voltages = np.linspace(0.45, 0.95, 40)
        energies = model.dynamic_energy(voltages)
        assert np.all(np.diff(energies) > 0)

    def test_extrapolation_is_finite_and_positive(self):
        model = SramEnergyModel()
        assert float(model.dynamic_energy(0.40)) > 0
        assert float(model.dynamic_energy(1.1)) > float(model.dynamic_energy(0.9))

    def test_requires_two_anchors(self):
        with pytest.raises(ValueError):
            SramEnergyModel(anchors=((0.9, 250e6, 36.5),))


class TestSnnacEnergyModel:
    def test_nominal_breakdown_matches_chip(self):
        model = SnnacEnergyModel()
        breakdown = model.breakdown(NOMINAL_OPERATING_POINT)
        assert breakdown.total == pytest.approx(67.08, abs=0.5)
        assert breakdown.logic_total == pytest.approx(30.58, abs=0.3)
        assert breakdown.sram_total == pytest.approx(36.50, abs=0.3)

    def test_nominal_power_matches_datasheet(self):
        model = SnnacEnergyModel()
        # 67 pJ/cycle at 250 MHz is the chip's 16.8 mW figure
        assert model.power(NOMINAL_OPERATING_POINT) == pytest.approx(16.8e-3, rel=0.02)

    def test_table2_scenario_energies(self):
        model = SnnacEnergyModel()
        highperf = model.energy_per_cycle(OperatingPoint(0.9, 0.65, 250e6))
        split = model.energy_per_cycle(OperatingPoint(0.55, 0.50, 17.8e6))
        joint = model.energy_per_cycle(OperatingPoint(0.55, 0.55, 17.8e6))
        assert highperf == pytest.approx(48.96, abs=0.6)
        assert split == pytest.approx(19.98, abs=0.6)
        assert joint == pytest.approx(20.60, abs=0.6)

    def test_feasibility_checks(self):
        model = SnnacEnergyModel()
        assert model.is_feasible(NOMINAL_OPERATING_POINT)
        assert model.is_feasible(OperatingPoint(0.9, 0.65, 250e6))
        # logic cannot run 250 MHz at 0.55 V
        assert not model.is_feasible(OperatingPoint(0.55, 0.9, 250e6))
        # SRAM periphery cannot run 250 MHz at 0.5 V
        assert not model.is_feasible(OperatingPoint(0.9, 0.50, 250e6))

    def test_logic_mep_near_paper_value(self):
        model = SnnacEnergyModel()
        voltage, frequency = model.logic_minimum_energy_point()
        assert 0.50 <= voltage <= 0.60
        assert 5e6 <= frequency <= 40e6

    def test_joint_mep_respects_accuracy_floor(self):
        model = SnnacEnergyModel()
        voltage, _ = model.joint_minimum_energy_point(min_sram_voltage=0.50)
        assert voltage >= 0.50
        higher_floor_voltage, _ = model.joint_minimum_energy_point(min_sram_voltage=0.70)
        assert higher_floor_voltage >= 0.70

    def test_breakdown_totals_are_consistent(self):
        model = SnnacEnergyModel()
        breakdown = model.breakdown(OperatingPoint(0.7, 0.6, 50e6))
        assert breakdown.total == pytest.approx(
            breakdown.logic_dynamic
            + breakdown.logic_leakage
            + breakdown.sram_dynamic
            + breakdown.sram_leakage
        )
        assert breakdown.leakage_total + breakdown.dynamic_total == pytest.approx(breakdown.total)
