"""Voltage-axis-batched adaptive deployments.

Three layers of soundness guarantees for the batched MATIC path:

1. **Sweep profiling** (`SramProfiler.profile_bank_sweep`,
   `MaticFlow.profile_chip_sweep`) must be *bit-identical* to the measured
   per-voltage procedure — the analytic derivation is an optimization, never
   a model change — and must fall back to the measured loop whenever the
   procedure it models was customized.
2. **Cold-path identity**: `deploy_adaptive_sweep(warm_start=False)` must be
   bit-identical to the historical one-`deploy_adaptive`-per-voltage flow,
   and shard-merged chained adaptive tasks bit-identical to unsharded runs.
3. **Warm-start soundness**: warm points converge within tolerance of cold
   ones, under the reduced budget, and warm/cold artifacts never collide in
   the trained-weights cache (the initial-weights content keys the lineage).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator.soc import Snnac, SnnacConfig
from repro.experiments.cache import ArtifactCache
from repro.matic.flow import MaticFlow, ProfileCacheCounters, TrainingConfig
from repro.nn.data import Dataset
from repro.sram import SramProfiler

VOLTAGES = (0.53, 0.50, 0.46)


def make_chip(seed: int = 5) -> Snnac:
    return Snnac(SnnacConfig(num_pes=2, words_per_bank=64, word_bits=16, seed=seed))


def make_dataset(seed: int = 0, samples: int = 120) -> tuple[Dataset, Dataset]:
    rng = np.random.default_rng(seed)
    inputs = rng.uniform(-1.0, 1.0, size=(samples, 2))
    targets = np.stack(
        [0.3 * inputs[:, 0] + 0.1, 0.5 * np.abs(inputs[:, 1])], axis=1
    )
    return Dataset(inputs, targets), Dataset(inputs[:40], targets[:40])


def assert_reports_identical(measured, derived):
    assert len(measured) == len(derived)
    for reference, candidate in zip(measured, derived):
        assert reference.fault_map == candidate.fault_map
        np.testing.assert_array_equal(
            reference.fault_map.stuck_mask, candidate.fault_map.stuck_mask
        )
        np.testing.assert_array_equal(
            reference.fault_map.stuck_values, candidate.fault_map.stuck_values
        )
        assert reference.read_after_write_errors == candidate.read_after_write_errors
        assert reference.read_after_read_errors == candidate.read_after_read_errors
        assert reference.pattern_errors == candidate.pattern_errors
        assert reference.voltage == candidate.voltage
        assert reference.temperature == candidate.temperature


class TestProfilerSweepEquivalence:
    """profile_bank_sweep is an equivalence oracle against profile_bank."""

    def test_default_patterns_bit_identical(self):
        profiler = SramProfiler()
        bank = make_chip().memory[0]
        derived = profiler.profile_bank_sweep(bank, VOLTAGES)
        measured = [profiler.profile_bank(bank, v) for v in VOLTAGES]
        assert_reports_identical(measured, derived)

    def test_custom_patterns_bit_identical(self):
        profiler = SramProfiler(test_patterns={"checker": 0xAAAA, "inverse": 0x5555})
        bank = make_chip().memory[1]
        derived = profiler.profile_bank_sweep(bank, VOLTAGES)
        measured = [profiler.profile_bank(bank, v) for v in VOLTAGES]
        assert_reports_identical(measured, derived)

    def test_partial_patterns_under_record_identically(self):
        """An all-ones-only background misses cells preferring 1 in both the
        measured and the derived procedure."""
        profiler = SramProfiler(test_patterns={"ones": 0xFFFF})
        bank = make_chip().memory[0]
        derived = profiler.profile_bank_sweep(bank, [0.46])
        measured = [profiler.profile_bank(bank, 0.46)]
        assert_reports_identical(measured, derived)
        full = SramProfiler().profile_bank(bank, 0.46)
        assert derived[0].fault_map.num_faults < full.fault_map.num_faults

    @settings(max_examples=15, deadline=None)
    @given(
        voltages=st.lists(
            st.floats(min_value=0.35, max_value=0.95), min_size=1, max_size=4
        ),
        temperature=st.floats(min_value=-10.0, max_value=85.0),
    )
    def test_equivalence_holds_across_operating_points(self, voltages, temperature):
        profiler = SramProfiler()
        bank = make_chip(seed=7).memory[0]
        derived = profiler.profile_bank_sweep(bank, voltages, temperature)
        measured = [profiler.profile_bank(bank, v, temperature) for v in voltages]
        assert_reports_identical(measured, derived)

    def test_sweep_leaves_contents_and_read_counter_untouched(self):
        """The analytic pass must not disturb the bank: no reads, no writes,
        deployed contents intact."""
        bank = make_chip().memory[0]
        words = (np.arange(bank.num_words, dtype=np.uint64) * 17) & np.uint64(0xFFFF)
        bank.write_all(words)
        reads = bank.read_count
        SramProfiler().profile_bank_sweep(bank, VOLTAGES)
        assert bank.read_count == reads
        np.testing.assert_array_equal(bank.stored_words(), words)

    def test_overridden_profile_bank_falls_back_to_measured_loop(self):
        """A subclass with its own measurement procedure invalidates the
        analytic derivation — the sweep must delegate to it per voltage."""
        calls = []

        class CustomProfiler(SramProfiler):
            def profile_bank(self, bank, voltage, temperature=25.0):
                calls.append(float(voltage))
                return super().profile_bank(bank, voltage, temperature)

        profiler = CustomProfiler()
        bank = make_chip().memory[0]
        derived = profiler.profile_bank_sweep(bank, VOLTAGES)
        assert calls == [float(v) for v in VOLTAGES]
        measured = [SramProfiler().profile_bank(bank, v) for v in VOLTAGES]
        assert_reports_identical(measured, derived)

    def test_unrestored_profiler_falls_back_with_side_effects(self):
        """restore_contents=False profiling leaves the last test pattern in
        the bank — part of the contract, so the sweep must reproduce it."""
        swept, looped = make_chip().memory[0], make_chip().memory[0]
        reports = SramProfiler(restore_contents=False).profile_bank_sweep(
            swept, VOLTAGES
        )
        reference = [
            SramProfiler(restore_contents=False).profile_bank(looped, v)
            for v in VOLTAGES
        ]
        assert_reports_identical(reference, reports)
        np.testing.assert_array_equal(swept.stored_words(), looped.stored_words())
        assert swept.read_count > 0  # genuinely measured, not derived

    def test_nonpositive_voltage_rejected(self):
        with pytest.raises(ValueError, match="voltage must be positive"):
            SramProfiler().profile_bank_sweep(make_chip().memory[0], [0.5, 0.0])


class TestProfileChipSweep:
    def test_matches_per_voltage_profile_chip(self, tmp_path):
        flow = MaticFlow(training_cache=ArtifactCache(root=tmp_path / "cache"))
        per_voltage = [flow.profile_chip(make_chip(), v) for v in VOLTAGES]
        swept = flow.profile_chip_sweep(make_chip(), VOLTAGES)
        assert len(swept) == len(VOLTAGES)
        for reference_maps, sweep_maps in zip(per_voltage, swept):
            assert reference_maps == sweep_maps

    def test_one_record_per_bank_and_counters(self, tmp_path):
        cache = ArtifactCache(root=tmp_path / "cache")
        flow = MaticFlow(training_cache=cache)
        chip = make_chip()
        flow.profile_chip_sweep(chip, VOLTAGES)
        assert flow.profile_counters.sweep_misses == len(chip.memory)
        sweep_records = list((cache.root / "fault-map-sweep").glob("*.pkl"))
        assert len(sweep_records) == len(chip.memory)

        flow.profile_chip_sweep(make_chip(), VOLTAGES)
        assert flow.profile_counters.sweep_hits == len(chip.memory)
        assert len(list((cache.root / "fault-map-sweep").glob("*.pkl"))) == len(
            chip.memory
        )

    def test_distinct_axes_do_not_collide(self, tmp_path):
        cache = ArtifactCache(root=tmp_path / "cache")
        flow = MaticFlow(training_cache=cache)
        full = flow.profile_chip_sweep(make_chip(), VOLTAGES)
        shorter = flow.profile_chip_sweep(make_chip(), VOLTAGES[:2])
        assert flow.profile_counters.sweep_misses == 2 * len(make_chip().memory)
        assert full[:2] == [list(maps) for maps in shorter] or full[:2] == shorter

    def test_counters_reset_and_as_dict(self):
        counters = ProfileCacheCounters(chip_hits=3, sweep_misses=2)
        snapshot = counters.as_dict()
        assert snapshot["chip_hits"] == 3 and snapshot["sweep_misses"] == 2
        counters.reset()
        assert all(value == 0 for value in counters.as_dict().values())


class TestColdPathIdentity:
    """warm_start=False is the historical flow, bit for bit."""

    def test_cold_sweep_bit_identical_to_per_voltage_deploys(self):
        train, _ = make_dataset()
        config = TrainingConfig(epochs=6, seed=3)
        historical = [
            MaticFlow(training=config).deploy_adaptive(
                make_chip(), "2-8-2", train, target_voltage=v
            )
            for v in VOLTAGES
        ]
        points = MaticFlow(training=config).deploy_adaptive_sweep(
            make_chip(), "2-8-2", train, voltages=VOLTAGES, warm_start=False
        )
        for reference, point in zip(historical, points):
            assert not point.warm_started
            assert point.voltage == reference.target_voltage
            for a, b in zip(
                reference.network.layers, point.deployment.network.layers
            ):
                np.testing.assert_array_equal(a.weights, b.weights)
                np.testing.assert_array_equal(a.bias, b.bias)
            assert reference.fault_maps == point.deployment.fault_maps

    def test_cold_sweep_shares_trained_weights_cache_with_historical_flow(
        self, tmp_path
    ):
        """Same initial weights + same masks + same config ⇒ the same
        trained-weights keys: the batched cold spelling recalls the
        historical flow's artifacts instead of retraining."""
        train, _ = make_dataset()
        cache = ArtifactCache(root=tmp_path / "cache")
        config = TrainingConfig(epochs=6, seed=3)
        for v in VOLTAGES:
            MaticFlow(training=config, training_cache=cache).deploy_adaptive(
                make_chip(), "2-8-2", train, target_voltage=v
            )
        stores = cache.stats.stores
        MaticFlow(training=config, training_cache=cache).deploy_adaptive_sweep(
            make_chip(), "2-8-2", train, voltages=VOLTAGES, warm_start=False
        )
        # only the fault-map-sweep records are new; every training recalls
        assert (
            cache.stats.stores == stores + len(make_chip().memory)
        ), "cold sweep must not retrain points the historical flow cached"


class TestWarmStartSoundness:
    def test_warm_points_within_tolerance_of_cold(self):
        train, test = make_dataset()
        config = TrainingConfig(epochs=12, seed=3)

        def mse(deployment):
            outputs = deployment.run_at(test.inputs)
            return float(np.mean((outputs - test.targets) ** 2))

        cold = MaticFlow(training=config).deploy_adaptive_sweep(
            make_chip(), "2-8-2", train, voltages=VOLTAGES, warm_start=False,
            measure=mse,
        )
        warm = MaticFlow(training=config).deploy_adaptive_sweep(
            make_chip(), "2-8-2", train, voltages=VOLTAGES, warm_start=True,
            measure=mse,
        )
        assert not warm[0].warm_started  # highest voltage trains cold
        assert all(point.warm_started for point in warm[1:])
        for cold_point, warm_point in zip(cold, warm):
            assert warm_point.measurement == pytest.approx(
                cold_point.measurement, abs=0.01
            )

    def test_warm_points_run_the_reduced_budget(self):
        train, _ = make_dataset()
        config = TrainingConfig(epochs=12, seed=3)
        points = MaticFlow(training=config).deploy_adaptive_sweep(
            make_chip(), "2-8-2", train, voltages=VOLTAGES, warm_epochs=2
        )
        assert points[0].history.epochs_run == config.epochs
        for point in points[1:]:
            assert point.history.epochs_run <= 2

    def test_walk_order_is_high_to_low_but_results_in_input_order(self):
        train, _ = make_dataset()
        config = TrainingConfig(epochs=4, seed=3)
        shuffled = (0.46, 0.53, 0.50)
        points = MaticFlow(training=config).deploy_adaptive_sweep(
            make_chip(), "2-8-2", train, voltages=shuffled
        )
        assert [point.voltage for point in points] == [float(v) for v in shuffled]
        # 0.53 is the walk's first point — the only cold one
        by_voltage = {point.voltage: point for point in points}
        assert not by_voltage[0.53].warm_started
        assert by_voltage[0.50].warm_started and by_voltage[0.46].warm_started

    def test_warm_and_cold_artifacts_never_collide(self, tmp_path):
        """The warm lineage keys through the initial-weights content: only
        the first (cold) point of a warm sweep may share an artifact with
        the cold sweep; every later point must train and store fresh."""
        train, _ = make_dataset()
        cache = ArtifactCache(root=tmp_path / "cache")
        config = TrainingConfig(epochs=6, seed=3)
        MaticFlow(training=config, training_cache=cache).deploy_adaptive_sweep(
            make_chip(), "2-8-2", train, voltages=VOLTAGES, warm_start=False
        )
        trained = len(list((cache.root / "trained-weights").glob("*.pkl")))
        assert trained == len(VOLTAGES)
        MaticFlow(training=config, training_cache=cache).deploy_adaptive_sweep(
            make_chip(), "2-8-2", train, voltages=VOLTAGES, warm_start=True
        )
        warm_trained = len(list((cache.root / "trained-weights").glob("*.pkl")))
        # first warm point == first cold point (legitimately shared); the
        # other warm points differ in initial weights AND epochs, so they
        # must have produced brand-new artifacts, never overwritten cold ones
        assert warm_trained == trained + len(VOLTAGES) - 1

    def test_warm_rerun_recalls_every_point(self, tmp_path):
        """The chained walk is deterministic, so a warm rerun is pure recall
        — the lineage key is stable across processes and sweeps."""
        train, _ = make_dataset()
        cache = ArtifactCache(root=tmp_path / "cache")
        config = TrainingConfig(epochs=6, seed=3)
        first = MaticFlow(
            training=config, training_cache=cache
        ).deploy_adaptive_sweep(make_chip(), "2-8-2", train, voltages=VOLTAGES)
        stores = cache.stats.stores
        second = MaticFlow(
            training=config, training_cache=cache
        ).deploy_adaptive_sweep(make_chip(), "2-8-2", train, voltages=VOLTAGES)
        assert cache.stats.stores == stores  # nothing retrained
        for a, b in zip(first, second):
            for la, lb in zip(
                a.deployment.network.layers, b.deployment.network.layers
            ):
                np.testing.assert_array_equal(la.weights, lb.weights)

    def test_empty_axis_rejected(self):
        train, _ = make_dataset()
        with pytest.raises(ValueError, match="at least one voltage"):
            MaticFlow().deploy_adaptive_sweep(
                make_chip(), "2-8-2", train, voltages=()
            )


class TestShardedAdaptiveMerge:
    def test_shard_merged_chained_tasks_bit_identical_to_unsharded(self, tmp_path):
        """The chained adaptive task shards by benchmark like the naive one;
        a two-shard split must merge bit-identical to the unsharded run."""
        from repro.experiments.engine import (
            ShardIncompleteError,
            ShardSpec,
            SweepRunner,
        )
        from repro.experiments.fig10_error_vs_voltage import run_fig10

        cache = ArtifactCache(root=tmp_path / "cache")
        kwargs = dict(
            benchmarks=("inversek2j", "bscholes"),
            voltages=(0.9, 0.5, 0.46),
            num_samples=200,
            adaptive_epochs=2,
            cache=cache,
        )
        reference = run_fig10(runner=SweepRunner(workers=1), **kwargs)

        store = ArtifactCache(root=tmp_path / "shards")
        for index in range(2):
            try:
                run_fig10(
                    runner=SweepRunner(
                        workers=1,
                        shard=ShardSpec(index, 2),
                        shard_store=store,
                        sweep_label="fig10-adaptive-shard-test",
                    ),
                    **kwargs,
                )
            except ShardIncompleteError:
                pass
        merged = run_fig10(
            runner=SweepRunner(
                workers=1,
                shard=ShardSpec(0, 2),
                shard_store=store,
                sweep_label="fig10-adaptive-shard-test",
            ),
            **kwargs,
        )
        for name in kwargs["benchmarks"]:
            for a, b in zip(
                reference.sweep_for(name).points, merged.sweep_for(name).points
            ):
                assert (
                    a.voltage,
                    a.bit_fault_rate,
                    a.naive_error,
                    a.adaptive_error,
                ) == (b.voltage, b.bit_fault_rate, b.naive_error, b.adaptive_error)
