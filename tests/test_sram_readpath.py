"""Equivalence oracle + cache-invalidation tests for the operating-point-
resident SRAM read path.

The word-resident read path (`(words & and_mask) | or_mask` from cached
per-operating-point masks) must be bit-identical — words, persistence, and
counters — to the bit-domain reference path it replaced: unpack the
addressed words, compare every cell's effective V_min,read against the rail,
flip disturbed cells to their preferred state, pack.  The reference is
reimplemented here, against the bank's ground-truth cell state, and driven
over randomized banks and access sequences.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sram import SramBank
from repro.sram.bitops import pack_bits, unpack_words


class ReferenceBitBank:
    """The pre-plan bit-domain read path, mirrored onto a live SramBank.

    Keeps its own ``(num_words, word_bits)`` bit-matrix storage and performs
    reads exactly as the historical implementation did.  ``cells`` (the
    sampled V_min / preferred-state population) are shared with the bank
    under test so both models see identical physics.
    """

    def __init__(self, bank: SramBank) -> None:
        self.bank = bank
        self.data_bits = np.zeros((bank.num_words, bank.word_bits), dtype=np.uint8)
        self.read_count = 0
        self.write_count = 0

    def write(self, addresses, words) -> None:
        addresses = np.atleast_1d(np.asarray(addresses, dtype=int))
        words = np.atleast_1d(np.asarray(words, dtype=np.uint64)) & np.uint64(
            self.bank.word_mask
        )
        if words.size == 1 and addresses.size != 1:
            words = np.full(addresses.shape, words[0], dtype=np.uint64)
        self.data_bits[addresses] = unpack_words(words, self.bank.word_bits)
        self.write_count += int(addresses.size)

    def read(self, addresses, voltage, temperature=25.0) -> np.ndarray:
        addresses = np.atleast_1d(np.asarray(addresses, dtype=int))
        vmin = self.bank.effective_vmin(temperature)[addresses]
        disturbed = vmin > float(voltage)
        bits = self.data_bits[addresses]
        preferred = self.bank.cells.preferred_state[addresses]
        new_bits = np.where(disturbed, preferred, bits)
        self.data_bits[addresses] = new_bits
        self.read_count += int(addresses.size)
        return pack_bits(new_bits)

    def stored_words(self) -> np.ndarray:
        return pack_bits(self.data_bits)


def _drive_pair(bank: ReferenceBitBank, rng: np.random.Generator, operations: int):
    """Run a random access sequence through both paths, asserting lockstep."""
    reference = bank
    live = reference.bank
    for _ in range(operations):
        size = int(rng.integers(1, live.num_words + 1))
        addresses = rng.choice(live.num_words, size=size, replace=False)
        if rng.random() < 0.4:
            words = rng.integers(0, 1 << live.word_bits, size=size, dtype=np.uint64)
            live.write(addresses, words)
            reference.write(addresses, words)
        else:
            voltage = float(rng.uniform(0.40, 0.95))
            temperature = float(rng.choice([-15.0, 25.0, 90.0]))
            observed = live.read(addresses, voltage=voltage, temperature=temperature)
            expected = reference.read(addresses, voltage=voltage, temperature=temperature)
            np.testing.assert_array_equal(observed, expected)
        np.testing.assert_array_equal(live.stored_words(), reference.stored_words())
        assert live.read_count == reference.read_count
        assert live.write_count == reference.write_count


class TestEquivalenceOracle:
    def test_randomized_access_sequence_is_bit_identical(self):
        rng = np.random.default_rng(7)
        bank = SramBank(48, 16, seed=3)
        _drive_pair(ReferenceBitBank(bank), rng, operations=60)

    @settings(max_examples=30, deadline=None)
    @given(
        num_words=st.integers(4, 40),
        word_bits=st.sampled_from([1, 8, 16, 22, 64]),
        seed=st.integers(0, 1000),
        drive_seed=st.integers(0, 1000),
    )
    def test_equivalence_property(self, num_words, word_bits, seed, drive_seed):
        """Property form of the oracle over random geometries and sequences."""
        bank = SramBank(num_words, word_bits, seed=seed)
        _drive_pair(ReferenceBitBank(bank), np.random.default_rng(drive_seed), 12)

    def test_single_address_and_scalar_forms(self):
        bank = SramBank(16, 16, seed=3)
        reference = ReferenceBitBank(bank)
        bank.write(5, 0xBEEF)
        reference.write(5, 0xBEEF)
        np.testing.assert_array_equal(
            bank.read(5, voltage=0.42), reference.read(5, voltage=0.42)
        )
        np.testing.assert_array_equal(bank.stored_words(), reference.stored_words())

    def test_read_count_includes_non_corrupting_reads(self):
        bank = SramBank(8, 16, seed=0)
        bank.read_all(voltage=0.9)
        bank.read_all(voltage=0.9)
        assert bank.read_count == 16


class TestCacheInvalidation:
    @pytest.fixture()
    def bank(self):
        return SramBank(64, 16, seed=7)

    def test_corruption_persists_across_reads_at_one_point(self, bank):
        reference = np.full(64, 0x0F0F, dtype=np.uint64)
        bank.write_all(reference)
        first = bank.read_all(voltage=0.45)
        assert bank.bit_error_count(reference) > 0
        np.testing.assert_array_equal(bank.read_all(voltage=0.45), first)
        np.testing.assert_array_equal(bank.read_all(voltage=0.9), first)

    def test_write_refreshes_corrupted_words(self, bank):
        reference = np.full(64, 0x3333, dtype=np.uint64)
        bank.write_all(reference)
        bank.read_all(voltage=0.42)
        bank.write_all(reference)
        np.testing.assert_array_equal(bank.read_all(voltage=0.9), reference)

    def test_operating_point_change_builds_distinct_masks(self, bank):
        low_and, low_or = bank.corruption_masks(0.44)
        high_and, high_or = bank.corruption_masks(0.90)
        assert len(bank._point_masks) == 2
        assert not (
            np.array_equal(low_and, high_and) and np.array_equal(low_or, high_or)
        )
        # nominal voltage corrupts nothing: identity masks
        assert np.all(high_and == np.uint64(bank.word_mask))
        assert np.all(high_or == np.uint64(0))
        # temperature shifts V_min, so it keys the cache too
        bank.corruption_masks(0.44, temperature=90.0)
        assert len(bank._point_masks) == 3

    def test_masks_are_cached_and_read_only(self, bank):
        first = bank.corruption_masks(0.46)
        second = bank.corruption_masks(0.46)
        assert first[0] is second[0] and first[1] is second[1]
        with pytest.raises(ValueError):
            first[0][0] = np.uint64(0)

    def test_cell_reassignment_invalidates_masks(self, bank):
        stale_and, _ = bank.corruption_masks(0.46)
        population = bank.cells
        population.vmin_read[:] = 0.30  # every cell now safe at 0.46 V
        bank.cells = population  # reassignment invalidates
        fresh_and, fresh_or = bank.corruption_masks(0.46)
        assert np.all(fresh_and == np.uint64(bank.word_mask))
        assert np.all(fresh_or == np.uint64(0))
        assert np.any(stale_and != fresh_and) or bank.fault_map_at(0.46).num_faults == 0

    def test_explicit_invalidation_after_in_place_mutation(self, bank):
        bank.corruption_masks(0.46)
        bank.cells.vmin_read[:] = 0.30
        bank.invalidate_operating_point_cache()
        assert not bank._point_masks
        fresh_and, _ = bank.corruption_masks(0.46)
        assert np.all(fresh_and == np.uint64(bank.word_mask))

    def test_resample_cells_changes_physics_not_contents(self, bank):
        contents = np.arange(64, dtype=np.uint64)
        bank.write_all(contents)
        old_vmin = bank.cells.vmin_read.copy()
        epoch = bank.content_epoch
        bank.resample_cells(seed=99)
        assert not np.array_equal(bank.cells.vmin_read, old_vmin)
        assert not bank._point_masks  # cache dropped
        np.testing.assert_array_equal(bank.stored_words(), contents)
        assert bank.content_epoch == epoch  # stored words untouched

    def test_masks_match_fault_map_at(self, bank):
        """The resident masks and the FaultMap view share one derivation."""
        for voltage in (0.40, 0.46, 0.52, 0.90):
            map_and, map_or = bank.fault_map_at(voltage).masks()
            bank_and, bank_or = bank.corruption_masks(voltage)
            np.testing.assert_array_equal(map_and, bank_and)
            np.testing.assert_array_equal(map_or, bank_or)

    def test_mask_digest_groups_equivalent_points(self, bank):
        # every cell fails well below 0.40 V and none near nominal, so the
        # two nominal points share a digest and the overscaled one differs
        assert bank.mask_digest(0.90) == bank.mask_digest(0.88)
        assert bank.mask_digest(0.90) != bank.mask_digest(0.40)


class TestContentEpoch:
    def test_epoch_tracks_actual_content_changes(self):
        bank = SramBank(32, 16, seed=5)
        epoch = bank.content_epoch
        words = np.arange(32, dtype=np.uint64)
        bank.write_all(words)
        assert bank.content_epoch == epoch + 1
        bank.write_all(words)  # identical content: no bump
        assert bank.content_epoch == epoch + 1
        bank.read_all(voltage=0.9)  # nothing corrupts at nominal
        assert bank.content_epoch == epoch + 1
        bank.read_all(voltage=0.42)  # corrupting read bumps
        assert bank.content_epoch > epoch + 1
        after_corruption = bank.content_epoch
        bank.read_all(voltage=0.42)  # already-corrupted: stable, no bump
        assert bank.content_epoch == after_corruption
