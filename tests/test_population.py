"""Chip-population fleet simulator: seeding, serving, and driver assembly.

The acceptance bar: per-die ``SeedSequence.spawn`` children match numpy's
spawn tree exactly (so any die can be re-materialized in isolation), the
seeded request stream is deterministic and shard-independent, a fleet of
one die is bit-identical to a direct :func:`simulate_die` call, and the
driver's duplicate-voltage serving path aliases rather than recomputes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.cache import ArtifactCache
from repro.experiments.common import default_flow, prepare_benchmark
from repro.experiments.engine import SweepRunner
from repro.experiments.fleet_population import (
    DEFAULT_OPERATING_VOLTAGES,
    run_fleet_population,
)
from repro.population import (
    ChipPopulation,
    FleetRequest,
    simulate_die,
    summarize_fleet,
)
from repro.sram.variation import CorrelationSpec, VariationScenario

GEOMETRY = dict(num_pes=4, words_per_bank=128)
NUM_SAMPLES = 240
SEED = 3


@pytest.fixture(scope="module")
def cache(tmp_path_factory):
    return ArtifactCache(root=tmp_path_factory.mktemp("population-cache"))


@pytest.fixture(scope="module")
def prepared(cache):
    return prepare_benchmark(
        "inversek2j", num_samples=NUM_SAMPLES, seed=SEED, cache=cache
    )


@pytest.fixture(scope="module")
def flow(cache):
    return default_flow(seed=SEED, cache=cache)


def _simulate(population, die, flow, prepared, requests=(), **kw):
    kw.setdefault("target_voltage", 0.50)
    return simulate_die(
        population,
        die,
        flow,
        topology=prepared.spec.topology,
        train=prepared.train,
        loss=prepared.spec.loss,
        baseline=prepared.baseline,
        test_inputs=prepared.test.inputs,
        error_fn=lambda outputs: float(prepared.spec.error(outputs, prepared.test)),
        requests=requests,
        **kw,
    )


class TestChipPopulation:
    def test_die_sequence_matches_numpy_spawn_tree(self):
        population = ChipPopulation(num_dies=5, entropy=42, **GEOMETRY)
        children = np.random.SeedSequence(42).spawn(5)
        for die, child in enumerate(children):
            ours = population.die_sequence(die)
            assert np.array_equal(
                ours.generate_state(4), child.generate_state(4)
            ), f"die {die} diverged from SeedSequence.spawn"

    def test_die_sampling_deterministic_and_independent(self):
        population = ChipPopulation(num_dies=3, entropy=7, **GEOMETRY)
        again = ChipPopulation(num_dies=3, entropy=7, **GEOMETRY)
        a = population.sample_chip(1)
        b = again.sample_chip(1)
        for bank_a, bank_b in zip(a.memory, b.memory):
            assert np.array_equal(bank_a.cells.vmin_read, bank_b.cells.vmin_read)
        other = population.sample_chip(2)
        assert not np.array_equal(
            a.memory[0].cells.vmin_read, other.memory[0].cells.vmin_read
        )

    def test_die_index_validated(self):
        population = ChipPopulation(num_dies=2, **GEOMETRY)
        with pytest.raises(ValueError):
            population.die_sequence(2)
        with pytest.raises(ValueError):
            ChipPopulation(num_dies=0)

    def test_scenario_threads_into_sampling(self):
        scenario = VariationScenario(
            name="region-0.60-tt",
            correlation=CorrelationSpec.from_shape("region", 0.6),
        )
        plain = ChipPopulation(num_dies=1, entropy=7, **GEOMETRY)
        correlated = ChipPopulation(
            num_dies=1, entropy=7, scenario=scenario, **GEOMETRY
        )
        assert not np.array_equal(
            plain.sample_chip(0).memory[0].cells.vmin_read,
            correlated.sample_chip(0).memory[0].cells.vmin_read,
        )

    def test_request_stream_deterministic_and_mixed(self):
        population = ChipPopulation(num_dies=4, entropy=9, **GEOMETRY)
        stream = population.request_stream(64, DEFAULT_OPERATING_VOLTAGES, seed=1)
        again = population.request_stream(64, DEFAULT_OPERATING_VOLTAGES, seed=1)
        assert stream == again
        assert len(stream) == 64
        assert {request.die for request in stream} <= set(range(4))
        assert {request.voltage for request in stream} <= set(
            DEFAULT_OPERATING_VOLTAGES
        )
        # the default stream actually mixes operating points and dies
        assert len({request.voltage for request in stream}) > 1
        assert len({request.die for request in stream}) > 1
        assert stream != population.request_stream(
            64, DEFAULT_OPERATING_VOLTAGES, seed=2
        )

    def test_request_stream_validates_inputs(self):
        population = ChipPopulation(num_dies=2, **GEOMETRY)
        with pytest.raises(ValueError):
            population.request_stream(-1, (0.5,))
        with pytest.raises(ValueError):
            population.request_stream(4, ())


class TestSimulateDie:
    def test_report_shape_and_served_requests(self, flow, prepared):
        population = ChipPopulation(num_dies=2, entropy=SEED, **GEOMETRY)
        requests = [
            FleetRequest(index=0, die=0, voltage=0.90),
            FleetRequest(index=1, die=0, voltage=0.50),
            FleetRequest(index=2, die=0, voltage=0.50),
            FleetRequest(index=3, die=1, voltage=0.50),
        ]
        report = _simulate(population, 0, flow, prepared, requests)
        assert report.die == 0
        assert report.requests_served == 3  # die 1's request is not ours
        assert report.requests_by_voltage == {0.90: 1, 0.50: 2}
        assert set(report.errors_by_voltage) == {0.90, 0.50}
        assert report.cycles > 0
        assert report.busy_seconds > 0.0
        assert 0.0 < report.vmin < 1.0
        assert 0.0 <= report.fault_rate < 1.0
        assert report.canary_margin is not None
        assert len(report.error_samples()) == 3

    def test_duplicate_voltage_requests_alias_one_measurement(
        self, flow, prepared
    ):
        """Serving many requests at one operating point measures it once —
        the run_sweep duplicate-voltage aliasing the fleet relies on."""
        population = ChipPopulation(num_dies=1, entropy=SEED, **GEOMETRY)
        many = [
            FleetRequest(index=i, die=0, voltage=0.50) for i in range(6)
        ] + [FleetRequest(index=6, die=0, voltage=0.90)]
        report = _simulate(population, 0, flow, prepared, many)
        assert report.requests_by_voltage == {0.50: 6, 0.90: 1}
        # all six duplicate requests share one error measurement
        assert len(report.errors_by_voltage) == 2

    def test_summarize_fleet_aggregates(self, flow, prepared):
        population = ChipPopulation(num_dies=2, entropy=SEED, **GEOMETRY)
        requests = population.request_stream(8, (0.90, 0.50), seed=SEED)
        reports = [
            _simulate(population, die, flow, prepared, requests)
            for die in range(2)
        ]
        summary = summarize_fleet(reports, target_voltage=0.50)
        assert summary.num_dies == 2
        assert summary.total_requests == 8
        assert 0.0 <= summary.yield_fraction <= 1.0
        assert summary.vmin_min <= summary.vmin_mean <= summary.vmin_max
        assert summary.throughput_requests_per_second > 0.0
        assert set(summary.error_percentiles) == {
            request.voltage for request in requests
        }
        for stats in summary.error_percentiles.values():
            assert stats["p50"] <= stats["p99"] <= stats["max"] or np.isclose(
                stats["p50"], stats["max"]
            )
        with pytest.raises(ValueError):
            summarize_fleet([], target_voltage=0.50)


class TestFleetPopulationDriver:
    def test_single_die_fleet_matches_direct_simulation(
        self, cache, flow, prepared
    ):
        result = run_fleet_population(
            benchmark="inversek2j",
            dies=1,
            num_requests=6,
            voltages=(0.90, 0.50),
            num_samples=NUM_SAMPLES,
            seed=SEED,
            chip_seed=11,
            runner=SweepRunner(workers=1),
            cache=cache,
            flow=flow,
            **GEOMETRY,
        )
        population = ChipPopulation(num_dies=1, entropy=11, **GEOMETRY)
        requests = population.request_stream(6, (0.90, 0.50), seed=SEED)
        direct = _simulate(population, 0, flow, prepared, requests)
        fleet = result.report_for(0)
        assert (fleet.vmin, fleet.fault_rate, fleet.canary_margin) == (
            direct.vmin,
            direct.fault_rate,
            direct.canary_margin,
        )
        assert fleet.errors_by_voltage == direct.errors_by_voltage
        assert fleet.requests_by_voltage == direct.requests_by_voltage
        assert fleet.seed == direct.seed

    def test_fleet_run_and_rendering(self, cache, flow):
        result = run_fleet_population(
            benchmark="inversek2j",
            dies=3,
            num_requests=9,
            voltages=(0.90, 0.50),
            num_samples=NUM_SAMPLES,
            seed=SEED,
            runner=SweepRunner(workers=1),
            cache=cache,
            flow=flow,
            **GEOMETRY,
        )
        assert [report.die for report in result.reports] == [0, 1, 2]
        assert result.summary is not None
        assert result.summary.total_requests == 9
        assert result.quarantined == []
        text = result.to_experiment_result().to_text()
        assert "fleet" in text
        assert "Vmin (V)" in text
        # scenario-aware runs record the scenario digest
        assert result.scenario_digest is None
        correlated = run_fleet_population(
            benchmark="inversek2j",
            dies=1,
            num_requests=2,
            voltages=(0.50,),
            shape="region",
            strength=0.6,
            num_samples=NUM_SAMPLES,
            seed=SEED,
            runner=SweepRunner(workers=1),
            cache=cache,
            flow=flow,
            **GEOMETRY,
        )
        assert correlated.scenario_digest is not None
        assert correlated.reports[0].vmin != result.reports[0].vmin
