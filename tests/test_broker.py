"""Chaos tests for the socket broker: wire protocol, journal, and backend.

Three layers, tested bottom-up: the broker *protocol* (idempotent claims,
stale fails, duplicate completions) against a live in-process server; the
*journal* (a SIGKILLed broker restarts with zero lost claims and zero lost
results, tolerating a torn final line); and the *backend* (real worker
processes, partitions, dropped connections, and a broker killed mid-sweep —
the merged map must stay bit-identical to :class:`SerialBackend` and a
resume must recompute nothing).
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.experiments.broker import (
    BrokerBackend,
    BrokerClient,
    BrokerError,
    BrokerServer,
    BrokerUnreachable,
    parse_address,
    _encode,
)
from repro.experiments.cache import ArtifactCache
from repro.experiments.engine import (
    QuarantinedTask,
    SweepRunner,
    expand_grid,
    resolve_backend,
)
from repro.experiments.faults import (
    ENV_FAULT_PLAN,
    DelayAck,
    DelayTask,
    DropConnection,
    FaultPlan,
    KillBroker,
    KillWorker,
    PartitionWorker,
)
from repro.experiments.queue import QueueBackend


def _log_execution(log_path, tag):
    with open(log_path, "a") as handle:
        handle.write(f"{tag}\n")


def _log_counts(log_path):
    try:
        lines = open(log_path).read().split()
    except OSError:
        return {}
    counts: dict[str, int] = {}
    for line in lines:
        counts[line] = counts.get(line, 0) + 1
    return counts


def _draw_worker(shared, task):
    rng = np.random.default_rng(task.seed)
    return {
        "voltage": task.voltage,
        "offset": shared["offset"],
        "draw": float(rng.uniform()),
    }


def _logged_worker(shared, task):
    _log_execution(shared["log"], f"{task.voltage}")
    return _draw_worker(shared, task)


def _poison_worker(shared, task):
    if task.voltage == shared["bad"]:
        raise RuntimeError("injected poison")
    return task.voltage * 2.0


def _grid(n=8, seed=23):
    return expand_grid(
        voltages=tuple(round(0.40 + 0.02 * i, 2) for i in range(n)), seed=seed
    )


@pytest.fixture
def store(tmp_path):
    return ArtifactCache(root=tmp_path / "cache")


def _broker_backend(store, **kw):
    kw.setdefault("lease_seconds", 10.0)
    kw.setdefault("poll_seconds", 0.01)
    kw.setdefault("connect_backoff", 0.02)
    return BrokerBackend(store=store, journal_dir=store.root / "broker", **kw)


def _runner(backend, store, **kw):
    kw.setdefault("workers", 2)
    kw.setdefault("sweep_label", "broker-test")
    return SweepRunner(backend=backend, shard_store=store, **kw)


def _no_repro_threads():
    return [t.name for t in threading.enumerate() if t.name.startswith("repro-")]


# ------------------------------------------------------------------- protocol


SWEEP = "sweep-abc123"


@pytest.fixture
def live_broker(tmp_path):
    """An in-process broker server plus a connected client."""
    server = BrokerServer(("127.0.0.1", 0), journal_dir=tmp_path / "journal")
    thread = threading.Thread(target=server.serve_forever, kwargs={"poll_interval": 0.05})
    thread.start()
    client = BrokerClient(server.address, timeout=5.0, attempts=3, backoff=0.01)
    try:
        yield server, client
    finally:
        client.close()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


def _records(n):
    return [
        {
            "digest": f"digest-{i:02d}",
            "task": _encode({"index": i}),
            "attempts": 0,
            "not_before": 0.0,
            "errors": [],
        }
        for i in range(n)
    ]


def _enqueue(client, n, retries=2, backoff=0.01):
    return client.call(
        {
            "op": "enqueue",
            "sweep": SWEEP,
            "retries": retries,
            "backoff": backoff,
            "records": _records(n),
        }
    )


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("127.0.0.1:7464") == ("127.0.0.1", 7464)

    def test_sequence_passthrough(self):
        assert parse_address(("broker.lan", 80)) == ("broker.lan", 80)

    def test_rejects_malformed(self):
        for bad in ("localhost", "host:", ":80", "host:port"):
            with pytest.raises(ValueError, match="HOST:PORT"):
                parse_address(bad)


class TestProtocol:
    def test_ping(self, live_broker):
        _server, client = live_broker
        assert client.call({"op": "ping"}) == {"ok": True, "sweeps": 0}

    def test_enqueue_claim_complete_collect(self, live_broker):
        _server, client = live_broker
        reply = _enqueue(client, 2)
        assert (reply["enqueued"], reply["known"]) == (2, 0)
        claim = client.call(
            {"op": "claim", "sweep": SWEEP, "owner": "w0", "lease_seconds": 5.0}
        )
        digest = claim["record"]["digest"]
        done = client.call(
            {
                "op": "complete",
                "sweep": SWEEP,
                "owner": "w0",
                "digest": digest,
                "attempts": 1,
                "result": _encode(41.5),
            }
        )
        assert done["duplicate"] is False
        collected = client.call(
            {"op": "collect", "sweep": SWEEP, "digests": [digest]}
        )
        payload = collected["settled"][digest]
        assert payload["status"] == "done" and payload["attempts"] == 1
        assert collected["pending"] == 1

    def test_enqueue_is_idempotent(self, live_broker):
        _server, client = live_broker
        _enqueue(client, 3)
        reply = _enqueue(client, 3)
        assert (reply["enqueued"], reply["known"]) == (0, 3)

    def test_claim_idempotent_per_owner(self, live_broker):
        """A re-sent claim (lost reply) returns the owner's own lease back."""
        _server, client = live_broker
        _enqueue(client, 2)
        first = client.call(
            {"op": "claim", "sweep": SWEEP, "owner": "w0", "lease_seconds": 5.0}
        )
        again = client.call(
            {"op": "claim", "sweep": SWEEP, "owner": "w0", "lease_seconds": 5.0}
        )
        assert again["record"]["digest"] == first["record"]["digest"]
        other = client.call(
            {"op": "claim", "sweep": SWEEP, "owner": "w1", "lease_seconds": 5.0}
        )
        assert other["record"]["digest"] != first["record"]["digest"]

    def test_duplicate_complete_absorbed(self, live_broker):
        _server, client = live_broker
        _enqueue(client, 1)
        claim = client.call(
            {"op": "claim", "sweep": SWEEP, "owner": "w0", "lease_seconds": 5.0}
        )
        message = {
            "op": "complete",
            "sweep": SWEEP,
            "owner": "w0",
            "digest": claim["record"]["digest"],
            "attempts": 1,
            "result": _encode("value"),
        }
        assert client.call(message)["duplicate"] is False
        assert client.call(message)["duplicate"] is True

    def test_stale_fail_ignored(self, live_broker):
        """fail is keyed on claim-time attempts: the re-send cannot double-count."""
        _server, client = live_broker
        _enqueue(client, 1, retries=5)
        claim = client.call(
            {"op": "claim", "sweep": SWEEP, "owner": "w0", "lease_seconds": 5.0}
        )
        digest = claim["record"]["digest"]
        message = {
            "op": "fail",
            "sweep": SWEEP,
            "owner": "w0",
            "digest": digest,
            "attempts": 0,
            "error": "boom",
        }
        assert client.call(message)["state"] == "requeued"
        assert client.call(message)["state"] == "stale"

    def test_fail_quarantines_after_budget(self, live_broker):
        _server, client = live_broker
        _enqueue(client, 1, retries=0)
        claim = client.call(
            {"op": "claim", "sweep": SWEEP, "owner": "w0", "lease_seconds": 5.0}
        )
        digest = claim["record"]["digest"]
        reply = client.call(
            {
                "op": "fail",
                "sweep": SWEEP,
                "owner": "w0",
                "digest": digest,
                "attempts": 0,
                "error": "boom",
            }
        )
        assert reply["state"] == "quarantined"
        collected = client.call({"op": "collect", "sweep": SWEEP, "digests": [digest]})
        payload = collected["settled"][digest]
        assert payload["status"] == "poison"
        assert payload["attempts"] == 1 and "boom" in payload["errors"][-1]

    def test_complete_after_retire_acks_duplicate(self, live_broker):
        """A late ack for a retired sweep must not error the worker."""
        _server, client = live_broker
        _enqueue(client, 1)
        client.call({"op": "retire", "sweep": SWEEP})
        reply = client.call(
            {
                "op": "complete",
                "sweep": SWEEP,
                "owner": "w0",
                "digest": "digest-00",
                "attempts": 1,
                "result": _encode(1),
            }
        )
        assert reply["duplicate"] is True

    def test_shutdown_stops_claims(self, live_broker):
        _server, client = live_broker
        _enqueue(client, 2)
        client.call({"op": "shutdown", "sweep": SWEEP})
        claim = client.call(
            {"op": "claim", "sweep": SWEEP, "owner": "w0", "lease_seconds": 5.0}
        )
        assert claim["shutdown"] is True and claim["record"] is None

    def test_unknown_op_refused(self, live_broker):
        _server, client = live_broker
        with pytest.raises(BrokerError, match="unknown op"):
            client.call({"op": "teleport", "sweep": SWEEP})

    def test_invalid_sweep_id_refused(self, live_broker):
        _server, client = live_broker
        with pytest.raises(BrokerError, match="invalid sweep id"):
            client.call({"op": "claim", "sweep": "../escape", "owner": "w0"})

    def test_unreachable_raises_after_budget(self, tmp_path):
        client = BrokerClient(("127.0.0.1", 1), timeout=0.2, attempts=2, backoff=0.01)
        with pytest.raises(BrokerUnreachable, match="2 attempt"):
            client.call({"op": "ping"})
        assert client.try_call({"op": "ping"}) is None


class TestJournalReplay:
    def _fill(self, tmp_path, journal_dir):
        """Enqueue 3, complete one, fail one, leave one leased; close abruptly."""
        server = BrokerServer(("127.0.0.1", 0), journal_dir=journal_dir)
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05}
        )
        thread.start()
        client = BrokerClient(server.address, timeout=5.0, attempts=3, backoff=0.01)
        # wide backoff: the failed task's requeue must still be inside its
        # backoff window when the replay assertions run
        _enqueue(client, 3, retries=5, backoff=30.0)
        first = client.call(
            {"op": "claim", "sweep": SWEEP, "owner": "w0", "lease_seconds": 30.0}
        )["record"]["digest"]
        client.call(
            {
                "op": "complete",
                "sweep": SWEEP,
                "owner": "w0",
                "digest": first,
                "attempts": 1,
                "result": _encode("settled-value"),
            }
        )
        second = client.call(
            {"op": "claim", "sweep": SWEEP, "owner": "w0", "lease_seconds": 30.0}
        )["record"]["digest"]
        client.call(
            {
                "op": "fail",
                "sweep": SWEEP,
                "owner": "w0",
                "digest": second,
                "attempts": 0,
                "error": "first attempt failed",
            }
        )
        third = client.call(
            {"op": "claim", "sweep": SWEEP, "owner": "w1", "lease_seconds": 30.0}
        )["record"]["digest"]
        client.close()
        # no retire, no clean shutdown of state: everything must come back
        # from the journal alone (server_close only closes file handles)
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)
        return first, second, third

    def test_replay_restores_settled_pending_and_leases(self, tmp_path):
        journal_dir = tmp_path / "journal"
        first, second, third = self._fill(tmp_path, journal_dir)
        revived = BrokerServer(("127.0.0.1", 0), journal_dir=journal_dir)
        try:
            collected = revived.handle_message(
                {"op": "collect", "sweep": SWEEP, "digests": [first, second, third]}
            )
            # the completed task survives with its exact payload
            assert collected["settled"][first]["result"] == _encode("settled-value")
            # the failed task is pending again with its attempt counted
            assert collected["pending"] == 2
            # w1's live lease survives: w1 re-claims its own record, w2 is
            # refused it (the failed task is inside its backoff window and
            # third is leased, so w2 gets nothing)
            reclaim = revived.handle_message(
                {"op": "claim", "sweep": SWEEP, "owner": "w1", "lease_seconds": 30.0}
            )
            assert reclaim["record"]["digest"] == third
            stranger = revived.handle_message(
                {"op": "claim", "sweep": SWEEP, "owner": "w2", "lease_seconds": 30.0}
            )
            assert stranger["record"] is None
        finally:
            revived.server_close()

    def test_replay_skips_torn_final_line(self, tmp_path):
        journal_dir = tmp_path / "journal"
        first, _second, _third = self._fill(tmp_path, journal_dir)
        path = journal_dir / f"{SWEEP}.journal"
        with open(path, "ab") as handle:
            handle.write(b'{"entry": "done", "digest": "torn')  # no newline
        revived = BrokerServer(("127.0.0.1", 0), journal_dir=journal_dir)
        try:
            collected = revived.handle_message(
                {"op": "collect", "sweep": SWEEP, "digests": [first, "torn"]}
            )
            assert first in collected["settled"]
            assert "torn" not in collected["settled"]
        finally:
            revived.server_close()

    def test_retire_deletes_journal(self, tmp_path):
        journal_dir = tmp_path / "journal"
        self._fill(tmp_path, journal_dir)
        revived = BrokerServer(("127.0.0.1", 0), journal_dir=journal_dir)
        try:
            assert (journal_dir / f"{SWEEP}.journal").exists()
            revived.handle_message({"op": "retire", "sweep": SWEEP})
            assert not (journal_dir / f"{SWEEP}.journal").exists()
            assert revived.handle_message({"op": "ping"}) == {"ok": True, "sweeps": 0}
        finally:
            revived.server_close()


# -------------------------------------------------------------------- backend


class TestBrokerBackend:
    def test_resolve_backend_accepts_broker(self):
        assert isinstance(resolve_backend("broker"), BrokerBackend)

    def test_matches_serial_bit_identical(self, store):
        tasks = _grid(8)
        shared = {"offset": 4}
        backend = _broker_backend(store)
        broker = _runner(backend, store, workers=3).map(
            _draw_worker, tasks, shared=shared
        )
        serial = SweepRunner(workers=1).map(_draw_worker, tasks, shared=shared)
        assert broker == serial
        assert backend.last_stats["tasks"] == 8
        assert backend.last_stats["enqueued"] == 8
        assert backend.last_stats["quarantined"] == 0
        assert backend.last_stats["broker_restarts"] == 0
        # a fully settled sweep retires its journal
        journal_dir = store.root / "broker"
        assert not journal_dir.exists() or not list(journal_dir.glob("*.journal"))

    def test_restart_recomputes_nothing(self, store, tmp_path):
        tasks = _grid(6)
        shared = {"offset": 1, "log": str(tmp_path / "executions.log")}
        first = _runner(_broker_backend(store), store).map(
            _logged_worker, tasks, shared=shared
        )
        counts = _log_counts(shared["log"])
        assert set(counts.values()) == {1}
        second_backend = _broker_backend(store)
        second = _runner(second_backend, store).map(
            _logged_worker, tasks, shared=shared
        )
        assert second == first
        assert second_backend.last_stats["recalled"] == 6
        assert second_backend.last_stats["enqueued"] == 0
        assert _log_counts(shared["log"]) == counts  # zero recomputation

    def test_kill_broker_restarts_without_recomputation(self, store, tmp_path):
        """SIGKILL the broker after journaling a completion (the ack is lost).

        The coordinator restarts it on the same port, journal replay restores
        every settled task, the worker re-sends the lost ack (absorbed as a
        duplicate), and nothing is ever executed twice.
        """
        plan = FaultPlan(rules=(KillBroker(after_completions=3),))
        backend = _broker_backend(
            store, lease_seconds=2.0, fault_plan=plan, backoff=0.02
        )
        tasks = _grid(8)
        shared = {"offset": 3, "log": str(tmp_path / "executions.log")}
        chaos = _runner(backend, store, workers=2).map(
            _logged_worker, tasks, shared=shared
        )
        serial = SweepRunner(workers=1).map(
            _logged_worker,
            tasks,
            shared={"offset": 3, "log": str(tmp_path / "reference.log")},
        )
        assert chaos == serial
        assert backend.last_stats["broker_restarts"] == 1
        assert backend.last_stats["quarantined"] == 0
        counts = _log_counts(shared["log"])
        assert sorted(counts) == sorted(str(t.voltage) for t in tasks)
        assert set(counts.values()) == {1}  # replay made the restart lossless

    def test_kill_workers_mid_sweep_bit_identical(self, store):
        plan = FaultPlan(
            rules=(
                KillWorker(worker=0, after_tasks=1, phase="claim"),
                KillWorker(worker=1, after_tasks=1, phase="publish"),
            )
        )
        backend = _broker_backend(
            store, lease_seconds=0.4, respawn=False, backoff=0.02, fault_plan=plan
        )
        tasks = _grid(10)
        shared = {"offset": 7}
        chaos = _runner(backend, store, workers=4).map(
            _draw_worker, tasks, shared=shared
        )
        serial = SweepRunner(workers=1).map(_draw_worker, tasks, shared=shared)
        assert chaos == serial
        assert backend.last_stats["worker_deaths"] == 2
        assert backend.last_stats["quarantined"] == 0

    def test_partition_forces_steal_and_absorbs_duplicate(self, store, tmp_path):
        """A partitioned worker's task is stolen; its late publish is absorbed.

        The straggler delay keeps the task mid-flight while the partition
        outlives the lease, so the broker re-leases it to the healthy worker
        and both executions land on the same idempotent store key.
        """
        plan = FaultPlan(
            rules=(
                PartitionWorker(worker=0, after_tasks=0, seconds=0.8),
                DelayTask(worker=0, seconds=0.6),
            )
        )
        backend = _broker_backend(
            store, lease_seconds=0.2, backoff=0.02, fault_plan=plan
        )
        tasks = _grid(3)
        shared = {"offset": 9, "log": str(tmp_path / "executions.log")}
        results = _runner(backend, store, workers=2).map(
            _logged_worker, tasks, shared=shared
        )
        reference = SweepRunner(workers=1).map(
            _logged_worker,
            tasks,
            shared={"offset": 9, "log": str(tmp_path / "reference.log")},
        )
        assert results == reference
        assert backend.last_stats["quarantined"] == 0
        counts = _log_counts(shared["log"])
        assert sorted(counts) == sorted(str(t.voltage) for t in tasks)
        assert max(counts.values()) >= 2  # the stolen task ran twice

    def test_dropped_ack_resent_and_absorbed(self, store, tmp_path):
        """DropConnection severs the socket after the complete is sent.

        The reply is lost; the client reconnects and re-sends; the broker
        answers ``duplicate: true``; the task is never executed twice.
        """
        plan = FaultPlan(
            rules=(DropConnection(worker=0, every=1, op="complete", limit=2),)
        )
        backend = _broker_backend(store, fault_plan=plan, backoff=0.02)
        tasks = _grid(4)
        shared = {"offset": 6, "log": str(tmp_path / "executions.log")}
        results = _runner(backend, store, workers=1).map(
            _logged_worker, tasks, shared=shared
        )
        reference = SweepRunner(workers=1).map(
            _logged_worker,
            tasks,
            shared={"offset": 6, "log": str(tmp_path / "reference.log")},
        )
        assert results == reference
        counts = _log_counts(shared["log"])
        assert set(counts.values()) == {1}  # re-sent acks, not re-executions

    def test_delayed_ack_expires_lease_and_absorbs(self, store, tmp_path):
        plan = FaultPlan(rules=(DelayAck(worker=0, seconds=0.5, every=1),))
        backend = _broker_backend(
            store, lease_seconds=0.2, backoff=0.02, fault_plan=plan
        )
        tasks = _grid(2)
        shared = {"offset": 8, "log": str(tmp_path / "executions.log")}
        results = _runner(backend, store, workers=2).map(
            _logged_worker, tasks, shared=shared
        )
        reference = SweepRunner(workers=1).map(
            _logged_worker,
            tasks,
            shared={"offset": 8, "log": str(tmp_path / "reference.log")},
        )
        assert results == reference
        assert backend.last_stats["quarantined"] == 0

    def test_unreachable_attached_broker_drains_inline(self, store):
        """A coordinator that can never reach its broker must not hang."""
        backend = _broker_backend(
            store,
            address="127.0.0.1:1",
            connect_timeout=0.2,
            connect_attempts=2,
        )
        tasks = _grid(4)
        shared = {"offset": 2}
        results = _runner(backend, store).map(_draw_worker, tasks, shared=shared)
        serial = SweepRunner(workers=1).map(_draw_worker, tasks, shared=shared)
        assert results == serial
        assert backend.last_stats["inline_drained"] == 4

    def test_inline_drain_keeps_retry_semantics(self, store):
        tasks = _grid(4)
        shared = {"offset": 0, "bad": tasks[1].voltage}
        backend = _broker_backend(
            store,
            address="127.0.0.1:1",
            connect_timeout=0.2,
            connect_attempts=2,
            backoff=0.01,
        )
        results = _runner(backend, store, retries=1).map(
            _poison_worker, tasks, shared=shared
        )
        poison = results[1]
        assert isinstance(poison, QuarantinedTask)
        assert poison.attempts == 2  # exactly retries + 1, same as the queue
        assert backend.last_stats["quarantined"] == 1

    def test_poison_quarantined_after_exact_budget(self, store):
        tasks = _grid(5)
        shared = {"offset": 0, "bad": tasks[2].voltage}
        backend = _broker_backend(store, backoff=0.02)
        results = _runner(backend, store, retries=1).map(
            _poison_worker, tasks, shared=shared
        )
        poison = results[2]
        assert isinstance(poison, QuarantinedTask)
        assert poison.attempts == 2
        assert "injected poison" in poison.errors[-1]
        healthy = [r for i, r in enumerate(results) if i != 2]
        assert healthy == [t.voltage * 2.0 for t in tasks if t is not tasks[2]]
        assert backend.quarantined == [poison]

    def test_no_leaked_threads_or_processes(self, store):
        """Every sweep — healthy or degraded — must stop what it started."""
        assert _no_repro_threads() == []
        _runner(_broker_backend(store), store).map(
            _draw_worker, _grid(3), shared={"offset": 0}
        )
        assert _no_repro_threads() == []
        # the inline-drain path runs a worker (and its heartbeats) in-process
        degraded = _broker_backend(
            store, address="127.0.0.1:1", connect_timeout=0.2, connect_attempts=2
        )
        _runner(degraded, store).map(_draw_worker, _grid(3), shared={"offset": 5})
        assert _no_repro_threads() == []

    def test_disabled_store_rejected(self, tmp_path):
        backend = BrokerBackend(
            store=ArtifactCache(root=tmp_path / "cache", enabled=False)
        )
        with pytest.raises(ValueError, match="REPRO_CACHE_DISABLE"):
            _runner(backend, None).map(_draw_worker, _grid(2), shared={"offset": 0})

    def test_runner_configuration_adopted(self, store):
        backend = BrokerBackend()
        runner = SweepRunner(
            backend=backend,
            workers=1,
            shard_store=store,
            sweep_label="adopted",
            retries=5,
            task_timeout=33.0,
            backoff=0.125,
        )
        runner.map(_draw_worker, _grid(2), shared={"offset": 0})
        assert backend.store is store
        assert backend.sweep_label == "adopted"
        assert backend.retries == 5
        assert backend.task_timeout == 33.0
        assert backend.backoff == 0.125


class TestBackendEquivalenceMatrix:
    def test_serial_queue_broker_identical(self, tmp_path):
        """The fig9a-shaped proof: three transports, one bit-identical table."""
        from repro.experiments import run_fig9a

        voltages = np.array([0.46, 0.52])
        rows = []
        for name in ("serial", "queue", "broker"):
            store = ArtifactCache(root=tmp_path / f"cache-{name}")
            if name == "serial":
                runner = SweepRunner(workers=1)
            else:
                backend: object = (
                    QueueBackend(store=store, poll_seconds=0.01)
                    if name == "queue"
                    else BrokerBackend(
                        store=store,
                        journal_dir=store.root / "broker",
                        poll_seconds=0.01,
                        connect_backoff=0.02,
                    )
                )
                runner = SweepRunner(
                    workers=2,
                    backend=backend,
                    shard_store=store,
                    sweep_label=f"matrix-{name}",
                )
            result = run_fig9a(voltages=voltages, num_words=96, runner=runner)
            rows.append(
                [
                    (p.voltage, p.measured_rate, p.predicted_rate, p.word_rate)
                    for p in result.points
                ]
            )
        assert rows[0] == rows[1] == rows[2]


class TestWireFaultPlanValidation:
    def test_wire_rules_round_trip(self):
        plan = FaultPlan(
            rules=(
                DropConnection(worker=3, every=2, op="complete", limit=2),
                PartitionWorker(worker=2, after_tasks=1, seconds=0.8),
                DelayAck(worker=1, seconds=0.25, every=2),
                KillBroker(after_completions=3),
            )
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_kill_broker_never_reaches_workers(self):
        plan = FaultPlan(
            rules=(KillBroker(after_completions=2), DelayAck(worker=0, seconds=0.1))
        )
        assert plan.broker_kill_after() == 2
        injector = plan.for_worker(0)
        assert injector._kill is None
        assert injector.ack_delay(0) == 0.1

    def test_no_kill_broker_rule(self):
        assert FaultPlan(rules=(DelayAck(worker=0, seconds=0.1),)).broker_kill_after() is None

    def test_entry_must_be_object(self):
        with pytest.raises(ValueError, match=r'rule #1 must be a JSON object'):
            FaultPlan.from_json('[{"kind": "kill", "worker": 0}, "oops"]')

    def test_entry_needs_kind(self):
        with pytest.raises(ValueError, match=r'has no "kind"'):
            FaultPlan.from_json('[{"worker": 0}]')

    def test_unknown_kind_lists_accepted(self):
        with pytest.raises(ValueError) as excinfo:
            FaultPlan.from_json('[{"kind": "meteor"}]')
        message = str(excinfo.value)
        assert "unknown fault kind 'meteor'" in message
        assert "kill-broker" in message and "partition" in message

    def test_unknown_field_named(self):
        with pytest.raises(ValueError) as excinfo:
            FaultPlan.from_json('[{"kind": "partition", "worker": 0, "untl": 3}]')
        message = str(excinfo.value)
        assert "unknown field(s) ['untl']" in message
        assert "'after_tasks'" in message and "'seconds'" in message

    def test_missing_required_field(self):
        with pytest.raises(ValueError, match=r"rule #0 \('delay-ack'\).*invalid"):
            FaultPlan.from_json('[{"kind": "delay-ack"}]')

    def test_plan_must_be_list(self):
        with pytest.raises(ValueError, match="must be a list"):
            FaultPlan.from_json('{"kind": "kill", "worker": 0}')

    def test_invalid_json(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_json("[{kind: kill}]")

    def test_env_errors_name_the_variable(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULT_PLAN, '[{"kind": "meteor"}]')
        with pytest.raises(ValueError, match=rf"\${ENV_FAULT_PLAN}"):
            FaultPlan.from_env()

    def test_env_json_round_trip(self, monkeypatch):
        plan = FaultPlan(rules=(KillBroker(after_completions=2),))
        env: dict[str, str] = {}
        plan.to_env(env)
        monkeypatch.setenv(ENV_FAULT_PLAN, env[ENV_FAULT_PLAN])
        assert FaultPlan.from_env() == plan
