"""Integration tests for the end-to-end MATIC flow on the accelerator model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import Snnac, SnnacConfig
from repro.matic import MaticFlow, TrainingConfig
from repro.nn import Trainer


FAST_TRAINING = TrainingConfig(epochs=30, learning_rate=0.15, lr_decay=0.95, seed=0)


@pytest.fixture(scope="module")
def digits_flow_setup(digits_small):
    """A trained baseline plus a flow configuration shared by the module."""
    spec, train, test = digits_small
    baseline = spec.build_network(seed=3)
    Trainer(baseline, learning_rate=0.2, epochs=50, seed=4).fit(train)
    flow = MaticFlow(word_bits=16, frac_bits=None, training=FAST_TRAINING)
    return spec, train, test, baseline, flow


def fresh_chip():
    return Snnac(SnnacConfig(seed=77))


class TestNaiveDeployment:
    def test_nominal_voltage_matches_software(self, digits_flow_setup):
        spec, train, test, baseline, flow = digits_flow_setup
        chip = fresh_chip()
        deployment = flow.deploy_naive(
            chip, spec.topology, train, target_voltage=0.9,
            loss=spec.loss, initial_network=baseline,
        )
        hardware_error = spec.error(deployment.run_at(test.inputs, 0.9), test)
        software_error = spec.error(baseline.predict(test.inputs), test)
        assert abs(hardware_error - software_error) < 0.05

    def test_overscaling_degrades_naive_deployment(self, digits_flow_setup):
        spec, train, test, baseline, flow = digits_flow_setup
        chip = fresh_chip()
        deployment = flow.deploy_naive(
            chip, spec.topology, train, target_voltage=0.46,
            loss=spec.loss, initial_network=baseline,
        )
        nominal_error = spec.error(deployment.run_at(test.inputs, 0.9), test)
        overscaled_error = spec.error(deployment.run_at(test.inputs, 0.46), test)
        assert overscaled_error > nominal_error + 0.10


class TestAdaptiveDeployment:
    def test_full_flow_recovers_accuracy(self, digits_flow_setup):
        spec, train, test, baseline, flow = digits_flow_setup
        voltage = 0.50

        naive_chip = fresh_chip()
        naive = flow.deploy_naive(
            naive_chip, spec.topology, train, target_voltage=voltage,
            loss=spec.loss, initial_network=baseline,
        )
        naive_error = spec.error(naive.run_at(test.inputs), test)

        adaptive_chip = fresh_chip()
        adaptive = flow.deploy_adaptive(
            adaptive_chip, spec.topology, train, target_voltage=voltage,
            loss=spec.loss, initial_network=baseline, select_canaries=False,
        )
        adaptive_error = spec.error(adaptive.run_at(test.inputs), test)

        assert adaptive_error < naive_error
        assert adaptive_error < naive_error - 0.05

    def test_deployment_artifacts_are_consistent(self, digits_flow_setup):
        spec, train, test, baseline, flow = digits_flow_setup
        chip = fresh_chip()
        deployment = flow.deploy_adaptive(
            chip, spec.topology, train, target_voltage=0.50,
            loss=spec.loss, initial_network=baseline, select_canaries=True,
        )
        # fault maps: one per PE bank, geometry matching the banks
        assert len(deployment.fault_maps) == len(chip.memory)
        for fault_map, bank in zip(deployment.fault_maps, chip.memory):
            assert fault_map.num_words == bank.num_words
        # mask set matches network depth and word length
        assert len(deployment.mask_set) == len(deployment.network.layers)
        assert deployment.mask_set.word_bits == 16
        # canaries were selected from every bank, inside the used region
        assert len(deployment.canaries) == 8 * len(chip.memory)
        for canary in deployment.canaries:
            assert canary.address < deployment.program.placement.words_used_per_pe[canary.bank]
        assert deployment.controller is not None
        # chip left at the target operating voltage
        assert chip.sram_regulator.voltage == pytest.approx(0.50)

    def test_on_chip_error_matches_software_prediction_of_masked_model(
        self, digits_flow_setup
    ):
        """The injection masks must describe the hardware exactly: the MAT
        model evaluated in software with masks installed and on the chip at
        the profiled voltage must agree."""
        spec, train, test, baseline, flow = digits_flow_setup
        chip = fresh_chip()
        deployment = flow.deploy_adaptive(
            chip, spec.topology, train, target_voltage=0.50,
            loss=spec.loss, initial_network=baseline, select_canaries=False,
        )
        software = deployment.network.predict(test.inputs)  # masked effective view
        hardware = deployment.run_at(test.inputs, 0.50)
        software_error = spec.error(software, test)
        hardware_error = spec.error(hardware, test)
        assert abs(software_error - hardware_error) < 0.05

    def test_canary_regulation_keeps_accuracy(self, digits_flow_setup):
        spec, train, test, baseline, flow = digits_flow_setup
        chip = fresh_chip()
        deployment = flow.deploy_adaptive(
            chip, spec.topology, train, target_voltage=0.50,
            loss=spec.loss, initial_network=baseline, select_canaries=True,
        )
        target_error = spec.error(deployment.run_at(test.inputs), test)
        trace = deployment.controller.regulate(safe_voltage=0.60)
        outputs, _ = chip.run_inference(test.inputs)
        regulated_error = spec.error(outputs, test)
        assert 0.44 <= trace.final_voltage <= 0.56
        assert regulated_error <= target_error + 0.08

    def test_regression_benchmark_flow(self):
        """End-to-end flow on a regression benchmark (inversek2j, 2-16-2)."""
        from repro.datasets import get_benchmark

        spec = get_benchmark("inversek2j")
        dataset = spec.generate(num_samples=600, seed=1)
        train, test = spec.split(dataset, seed=2)
        baseline = spec.build_network(seed=3)
        Trainer(baseline, learning_rate=0.3, epochs=40, seed=4).fit(train)
        flow = MaticFlow(word_bits=16, frac_bits=None, training=FAST_TRAINING)

        chip = fresh_chip()
        naive = flow.deploy_naive(
            chip, spec.topology, train, target_voltage=0.47,
            loss=spec.loss, initial_network=baseline,
        )
        naive_mse = spec.error(naive.run_at(test.inputs), test)

        chip = fresh_chip()
        adaptive = flow.deploy_adaptive(
            chip, spec.topology, train, target_voltage=0.47,
            loss=spec.loss, initial_network=baseline, select_canaries=False,
        )
        adaptive_mse = spec.error(adaptive.run_at(test.inputs), test)
        assert adaptive_mse < naive_mse
