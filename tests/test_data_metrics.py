"""Unit tests for repro.nn.data and repro.nn.metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Dataset,
    average_error_increase,
    classification_error,
    classification_rate,
    error_increase,
    iterate_minibatches,
    mean_squared_error,
    one_hot,
    train_test_split,
)


class TestOneHot:
    def test_basic_encoding(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int), 2)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 9), min_size=1, max_size=50))
    def test_rows_sum_to_one(self, labels):
        out = one_hot(np.array(labels), 10)
        np.testing.assert_array_equal(out.sum(axis=1), np.ones(len(labels)))
        np.testing.assert_array_equal(np.argmax(out, axis=1), labels)


class TestDataset:
    def test_validates_lengths(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros((4, 1)))

    def test_reshapes_1d_targets(self):
        ds = Dataset(np.zeros((3, 2)), np.zeros(3))
        assert ds.targets.shape == (3, 1)

    def test_requires_2d_inputs(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros(3), np.zeros(3))

    def test_subset_preserves_labels(self):
        ds = Dataset(np.arange(10).reshape(5, 2), np.zeros(5), labels=np.arange(5))
        sub = ds.subset(np.array([1, 3]))
        np.testing.assert_array_equal(sub.labels, [1, 3])
        assert len(sub) == 2

    def test_shuffled_is_permutation(self):
        ds = Dataset(np.arange(20).reshape(10, 2), np.arange(10), labels=np.arange(10))
        shuffled = ds.shuffled(rng=0)
        assert sorted(shuffled.labels.tolist()) == list(range(10))
        assert len(shuffled) == 10

    def test_properties(self):
        ds = Dataset(np.zeros((6, 4)), np.zeros((6, 3)))
        assert ds.num_features == 4
        assert ds.num_outputs == 3


class TestTrainTestSplit:
    def test_seven_to_one_ratio(self):
        ds = Dataset(np.zeros((800, 2)), np.zeros(800))
        train, test = train_test_split(ds, ratio=7, rng=0)
        assert len(train) == 700
        assert len(test) == 100

    def test_ten_to_one_ratio(self):
        ds = Dataset(np.zeros((1100, 2)), np.zeros(1100))
        train, test = train_test_split(ds, ratio=10, rng=0)
        assert len(train) == 1000
        assert len(test) == 100

    def test_fractional_ratio(self):
        ds = Dataset(np.zeros((100, 2)), np.zeros(100))
        train, test = train_test_split(ds, ratio=0.8, rng=0)
        assert len(train) == 80

    def test_no_overlap_and_full_coverage(self):
        inputs = np.arange(100).reshape(50, 2).astype(float)
        ds = Dataset(inputs, np.zeros(50), labels=np.arange(50))
        train, test = train_test_split(ds, ratio=4, rng=3)
        combined = sorted(train.labels.tolist() + test.labels.tolist())
        assert combined == list(range(50))

    def test_invalid_ratio(self):
        ds = Dataset(np.zeros((10, 2)), np.zeros(10))
        with pytest.raises(ValueError):
            train_test_split(ds, ratio=0)


class TestMinibatches:
    def test_covers_all_samples(self):
        x = np.arange(23).reshape(-1, 1).astype(float)
        t = x.copy()
        seen = []
        for bx, _ in iterate_minibatches(x, t, batch_size=5, shuffle=False):
            seen.extend(bx[:, 0].tolist())
        assert sorted(seen) == list(range(23))

    def test_last_batch_may_be_short(self):
        x = np.zeros((10, 1))
        sizes = [len(b) for b, _ in iterate_minibatches(x, x, batch_size=4, shuffle=False)]
        assert sizes == [4, 4, 2]

    def test_shuffle_changes_order(self):
        x = np.arange(50).reshape(-1, 1).astype(float)
        first_batch, _ = next(
            iterate_minibatches(x, x, batch_size=50, rng=np.random.default_rng(0))
        )
        assert not np.array_equal(first_batch[:, 0], np.arange(50))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(np.zeros((4, 1)), np.zeros((4, 1)), batch_size=0))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(np.zeros((4, 1)), np.zeros((5, 1)), batch_size=2))


class TestMetrics:
    def test_classification_rate_multiclass(self):
        predictions = np.array([[0.9, 0.1, 0.0], [0.1, 0.2, 0.7], [0.4, 0.5, 0.1]])
        labels = np.array([0, 2, 0])
        assert classification_rate(predictions, labels) == pytest.approx(2 / 3)
        assert classification_error(predictions, labels) == pytest.approx(1 / 3)

    def test_classification_rate_binary_single_column(self):
        predictions = np.array([[0.8], [0.3], [0.6]])
        labels = np.array([1, 0, 0])
        assert classification_rate(predictions, labels) == pytest.approx(2 / 3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            classification_rate(np.zeros((0, 3)), np.zeros(0, dtype=int))

    def test_mse_matches_numpy(self):
        p = np.array([[1.0, 2.0]])
        t = np.array([[0.0, 0.0]])
        assert mean_squared_error(p, t) == pytest.approx(2.5)

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_squared_error(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_error_increase_clips_at_zero(self):
        assert error_increase(0.05, 0.10) == 0.0
        assert error_increase(0.30, 0.10) == pytest.approx(0.20)

    def test_average_error_increase(self):
        errors = np.array([0.2, 0.4, 0.05])
        assert average_error_increase(errors, 0.1) == pytest.approx((0.1 + 0.3 + 0.0) / 3)

    def test_average_error_increase_empty_raises(self):
        with pytest.raises(ValueError):
            average_error_increase(np.array([]), 0.1)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(0.0, 1.0), min_size=1, max_size=20),
        st.floats(0.0, 1.0),
    )
    def test_aei_is_non_negative_and_bounded(self, errors, nominal):
        aei = average_error_increase(np.array(errors), nominal)
        assert 0.0 <= aei <= 1.0
