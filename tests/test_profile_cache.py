"""Memoized chip profiling: MaticFlow.profile_chip through the artifact cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator.soc import Snnac, SnnacConfig
from repro.experiments.cache import ArtifactCache
from repro.matic.flow import MaticFlow


def make_chip(seed: int = 5) -> Snnac:
    return Snnac(SnnacConfig(num_pes=2, words_per_bank=64, word_bits=16, seed=seed))


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(root=tmp_path / "cache")


VOLTAGE = 0.46


class TestProfileChipMemoization:
    def test_memoized_maps_bit_identical_to_fresh(self, cache):
        fresh = MaticFlow().profile_chip(make_chip(), VOLTAGE)
        flow = MaticFlow(training_cache=cache)
        cold = flow.profile_chip(make_chip(), VOLTAGE)
        warm = flow.profile_chip(make_chip(), VOLTAGE)
        assert len(fresh) == len(cold) == len(warm) == 2
        for reference, first, second in zip(fresh, cold, warm):
            assert reference == first
            assert first == second
            np.testing.assert_array_equal(first.stuck_mask, second.stuck_mask)
            np.testing.assert_array_equal(first.stuck_values, second.stuck_values)

    def test_repeat_profile_is_a_cache_hit(self, cache):
        flow = MaticFlow(training_cache=cache)
        flow.profile_chip(make_chip(), VOLTAGE)
        assert flow.profile_counters.chip_misses == 1
        assert flow.profile_counters.bank_misses == 2  # one per bank
        stores = cache.stats.stores
        hits = cache.stats.hits
        flow.profile_chip(make_chip(), VOLTAGE)
        assert cache.stats.stores == stores  # nothing re-profiled
        assert cache.stats.hits == hits + 1  # one chip-level hit, no bank trips
        assert flow.profile_counters.chip_hits == 1
        assert flow.profile_counters.bank_hits == 0

    def test_cache_hit_does_not_touch_the_bank(self, cache):
        flow = MaticFlow(training_cache=cache)
        flow.profile_chip(make_chip(), VOLTAGE)  # populate

        chip = make_chip()
        deployed = [
            (np.arange(bank.num_words, dtype=np.uint64) * 13) & np.uint64(0xFFFF)
            for bank in chip.memory
        ]
        for bank, words in zip(chip.memory, deployed):
            bank.write_all(words)
        reads_before = [bank.read_count for bank in chip.memory]
        flow.profile_chip(chip, VOLTAGE)
        for bank, words, reads in zip(chip.memory, deployed, reads_before):
            np.testing.assert_array_equal(bank.stored_words(), words)
            assert bank.read_count == reads  # the hit skipped profiling reads

    def test_hits_survive_a_fresh_cache_instance(self, cache):
        MaticFlow(training_cache=cache).profile_chip(make_chip(), VOLTAGE)
        reopened = ArtifactCache(root=cache.root)
        flow = MaticFlow(training_cache=reopened)
        flow.profile_chip(make_chip(), VOLTAGE)
        assert reopened.stats.hits == 1  # the single chip-level record
        assert reopened.stats.stores == 0

    def test_distinct_operating_points_do_not_collide(self, cache):
        flow = MaticFlow(training_cache=cache)
        chip = make_chip()
        low = flow.profile_chip(chip, 0.44)
        high = flow.profile_chip(chip, 0.50)
        warm_low = flow.profile_chip(make_chip(), 0.44)
        warm_high = flow.profile_chip(make_chip(), 0.50)
        assert low[0].num_faults > high[0].num_faults
        for a, b in zip(low + high, warm_low + warm_high):
            assert a == b
        cold_temp = flow.profile_chip(make_chip(), 0.44, temperature=-10.0)
        # 2 bank + 1 chip records per operating point, third point re-profiled
        assert cache.stats.stores == 9
        assert cold_temp[0].num_faults >= low[0].num_faults

    def test_distinct_chips_do_not_collide(self, cache):
        flow = MaticFlow(training_cache=cache)
        first = flow.profile_chip(make_chip(seed=5), VOLTAGE)
        second = flow.profile_chip(make_chip(seed=6), VOLTAGE)
        assert cache.stats.stores == 6  # both chips (2 bank + 1 chip records each)
        assert any(a != b for a, b in zip(first, second))

    def test_custom_profiler_class_gets_own_cache_entries(self, cache):
        """A subclass may change the measurement procedure, so it must never
        share artifacts with the default profiler."""
        from repro.sram import SramProfiler

        class CustomProfiler(SramProfiler):
            pass

        flow = MaticFlow(training_cache=cache)
        flow.profile_chip(make_chip(), VOLTAGE)
        stores = cache.stats.stores
        flow.profile_chip(make_chip(), VOLTAGE, profiler=CustomProfiler())
        assert cache.stats.stores == stores + 3  # re-profiled under its own key

    def test_profiler_configuration_participates_in_the_key(self, cache):
        """A subclass extending describe() with its own settings gets one
        artifact per configuration, not one per class."""
        from repro.sram import SramProfiler

        class RepeatProfiler(SramProfiler):
            def __init__(self, passes: int) -> None:
                super().__init__()
                self.passes = passes

            def describe(self) -> dict:
                return {**super().describe(), "passes": int(self.passes)}

        flow = MaticFlow(training_cache=cache)
        flow.profile_chip(make_chip(), VOLTAGE, profiler=RepeatProfiler(passes=1))
        stores = cache.stats.stores
        flow.profile_chip(make_chip(), VOLTAGE, profiler=RepeatProfiler(passes=3))
        assert cache.stats.stores == stores + 3  # separate keys per config
        flow.profile_chip(make_chip(), VOLTAGE, profiler=RepeatProfiler(passes=3))
        assert cache.stats.stores == stores + 3  # same config is a hit

    def test_patterns_for_is_public_and_keys_the_cache(self, cache):
        """A subclass overriding the public patterns_for() hook must get its
        own cache entries — the key resolves patterns through the public API,
        not a private helper a custom profiler could silently miss."""
        from repro.sram import SramProfiler

        class CheckerboardProfiler(SramProfiler):
            def patterns_for(self, bank):
                return {
                    "checker": 0xAAAA & bank.word_mask,
                    "rechecker": 0x5555 & bank.word_mask,
                }

        profiler = CheckerboardProfiler()
        assert set(profiler.patterns_for(make_chip().memory[0])) == {
            "checker",
            "rechecker",
        }
        # a non-overriding profiler resolves both spellings identically
        plain = SramProfiler()
        bank = make_chip().memory[0]
        assert plain._patterns_for(bank) == plain.patterns_for(bank)

        flow = MaticFlow(training_cache=cache)
        flow.profile_chip(make_chip(), VOLTAGE)
        stores = cache.stats.stores
        flow.profile_chip(make_chip(), VOLTAGE, profiler=CheckerboardProfiler())
        assert cache.stats.stores == stores + 3  # re-profiled under its own key
        flow.profile_chip(make_chip(), VOLTAGE, profiler=CheckerboardProfiler())
        assert cache.stats.stores == stores + 3  # same patterns hit the cache

    def test_legacy_private_override_still_drives_profiling(self):
        """A pre-publication subclass overriding _patterns_for keeps working:
        the public hook detects the override and delegates to it."""
        from repro.sram import SramProfiler

        class LegacyProfiler(SramProfiler):
            def _patterns_for(self, bank):
                return {"only-ones": bank.word_mask}

        profiler = LegacyProfiler()
        bank = make_chip().memory[0]
        assert profiler.patterns_for(bank) == {"only-ones": bank.word_mask}
        report = profiler.profile_bank(bank, VOLTAGE)
        assert set(report.pattern_errors) == {"only-ones"}
        # only cells preferring 0 corrupt an all-ones background
        for fault in report.fault_map.faults:
            assert fault.stuck_value == 0

        class LegacySuperProfiler(SramProfiler):
            def _patterns_for(self, bank):
                base = super()._patterns_for(bank)  # must not recurse
                base["checker"] = 0xAAAA & bank.word_mask
                return base

        extended = LegacySuperProfiler().patterns_for(bank)
        assert set(extended) == {"zeros", "ones", "checker"}

    def test_unrestored_profiler_bypasses_memoization(self, cache):
        """restore_contents=False profiling has a visible side effect (the
        bank keeps the test patterns), so a cache hit would not be
        equivalent — such profilers must never hit or populate the cache."""
        from repro.sram import SramProfiler

        flow = MaticFlow(training_cache=cache)
        profiler = SramProfiler(restore_contents=False)
        flow.profile_chip(make_chip(), VOLTAGE, profiler=profiler)
        flow.profile_chip(make_chip(), VOLTAGE, profiler=profiler)
        assert cache.stats.stores == 0
        assert cache.stats.hits == 0

    def test_uncached_flow_still_profiles(self):
        maps = MaticFlow().profile_chip(make_chip(), VOLTAGE)
        truth = [
            bank.fault_map_at(VOLTAGE) for bank in make_chip().memory
        ]
        for measured, expected in zip(maps, truth):
            assert measured == expected
