"""Shared fixtures for the test suite.

Heavier artifacts (trained networks, generated datasets, chip instances) are
session-scoped so the suite stays fast; tests that mutate state build their
own instances instead of using these fixtures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import Snnac, SnnacConfig
from repro.datasets import get_benchmark
from repro.nn import Dataset, Network, Trainer, one_hot
from repro.quant import WeightQuantizer


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def toy_dataset():
    """A small, separable 2-class dataset (8 features)."""
    generator = np.random.default_rng(7)
    inputs = generator.normal(size=(400, 8))
    labels = (inputs[:, 0] + 0.5 * inputs[:, 1] - 0.2 * inputs[:, 2] > 0).astype(int)
    return Dataset(
        inputs=inputs,
        targets=one_hot(labels, 2),
        labels=labels,
        name="toy",
    )


@pytest.fixture(scope="session")
def toy_regression_dataset():
    """A small 1-output regression dataset with targets in [0, 1]."""
    generator = np.random.default_rng(11)
    inputs = generator.uniform(0.0, 1.0, size=(300, 4))
    targets = 0.5 * inputs[:, :1] + 0.3 * inputs[:, 1:2] * inputs[:, 2:3] + 0.1
    return Dataset(inputs=inputs, targets=targets, name="toy-regression")


@pytest.fixture(scope="session")
def trained_toy_network(toy_dataset):
    """A trained 8-16-2 sigmoid classifier on the toy dataset."""
    network = Network(
        "8-16-2",
        hidden_activation="sigmoid",
        output_activation="sigmoid",
        loss="binary_cross_entropy",
        seed=5,
    )
    Trainer(network, learning_rate=0.3, epochs=40, batch_size=16, seed=6).fit(toy_dataset)
    return network


@pytest.fixture(scope="session")
def digits_small():
    """A small digit dataset split, shared by training-oriented tests."""
    spec = get_benchmark("mnist")
    dataset = spec.generate(num_samples=800, seed=21)
    train, test = spec.split(dataset, seed=22)
    return spec, train, test


@pytest.fixture()
def small_chip():
    """A small SNNAC instance (modest banks) with deterministic variation."""
    return Snnac(SnnacConfig(num_pes=4, words_per_bank=64, word_bits=16, seed=42))


@pytest.fixture()
def default_quantizer():
    return WeightQuantizer(total_bits=16, frac_bits=13)
