"""Unit tests for the SNNAC SoC wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import (
    CHIP_CHARACTERISTICS,
    NOMINAL_OPERATING_POINT,
    OperatingPoint,
    Snnac,
    SnnacConfig,
)
from repro.nn import Network
from repro.quant import WeightQuantizer
from repro.sram import EnvironmentalConditions


@pytest.fixture()
def chip():
    return Snnac(SnnacConfig(num_pes=4, words_per_bank=64, seed=3))


@pytest.fixture()
def deployed_chip(chip):
    network = Network("10-8-2", seed=1)
    chip.deploy(network, WeightQuantizer(16, 13))
    return chip, network


class TestConstruction:
    def test_default_configuration_matches_paper(self):
        chip = Snnac()
        assert len(chip.memory) == 8
        assert chip.memory.word_bits == 16
        assert chip.logic_regulator.voltage == pytest.approx(0.9)
        assert chip.frequency == pytest.approx(250e6)

    def test_chip_characteristics_constants(self):
        assert CHIP_CHARACTERISTICS["num_pes"] == 8
        assert CHIP_CHARACTERISTICS["nominal_power_w"] == pytest.approx(16.8e-3)

    def test_different_seeds_give_different_dies(self):
        a = Snnac(SnnacConfig(num_pes=2, words_per_bank=32, seed=1))
        b = Snnac(SnnacConfig(num_pes=2, words_per_bank=32, seed=2))
        assert not np.allclose(a.memory[0].cells.vmin_read, b.memory[0].cells.vmin_read)


class TestDeploymentAndInference:
    def test_deploy_and_predict(self, deployed_chip):
        chip, network = deployed_chip
        x = np.random.default_rng(0).random((6, 10))
        outputs = chip.predict(x)
        assert outputs.shape == (6, 2)
        np.testing.assert_allclose(outputs, network.predict(x), atol=0.03)

    def test_mcu_bookkeeping(self, deployed_chip):
        chip, _ = deployed_chip
        chip.run_inference(np.zeros((3, 10)))
        assert chip.mcu.inference_requests == 3
        assert chip.mcu.wake_count >= 2  # deploy + inference
        assert chip.mcu.asleep

    def test_operating_point_roundtrip(self, chip):
        point = OperatingPoint(0.55, 0.5, 17.8e6)
        chip.set_operating_point(point)
        assert chip.operating_point.logic_voltage == pytest.approx(0.55)
        assert chip.operating_point.sram_voltage == pytest.approx(0.5)
        assert chip.frequency == pytest.approx(17.8e6)

    def test_environment_affects_effective_voltage(self, chip):
        chip.sram_regulator.set_voltage(0.5)
        chip.set_environment(EnvironmentalConditions(temperature=25.0, supply_noise=-0.02))
        assert chip.effective_sram_voltage == pytest.approx(0.48)

    def test_low_voltage_inference_differs_and_refresh_recovers(self, deployed_chip):
        chip, _ = deployed_chip
        x = np.random.default_rng(1).random((8, 10))
        nominal = chip.predict(x)
        chip.sram_regulator.set_voltage(0.42)
        corrupted = chip.predict(x)
        assert not np.allclose(nominal, corrupted)
        chip.refresh_weights()
        chip.sram_regulator.set_voltage(0.9)
        np.testing.assert_allclose(chip.predict(x), nominal)


class TestRunVoltageSweep:
    def test_sweep_matches_sequential_regulated_inference(self, deployed_chip):
        """run_voltage_sweep must equal set_voltage + refresh + run_inference
        per point — regulator quantization and clamping included (0.523 V
        programs as 0.525 V; 0.2 V clamps to the regulator minimum)."""
        chip, network = deployed_chip
        voltages = [0.9, 0.523, 0.46, 0.2]
        x = np.random.default_rng(4).random((6, 10))

        twin = Snnac(SnnacConfig(num_pes=4, words_per_bank=64, seed=3))
        twin.deploy(network, WeightQuantizer(16, 13))
        expected = []
        for voltage in voltages:
            twin.refresh_weights()
            twin.sram_regulator.set_voltage(voltage)
            expected.append(twin.run_inference(x)[0])

        swept = chip.run_voltage_sweep(x, voltages)
        for reference, (outputs, _) in zip(expected, swept):
            np.testing.assert_array_equal(reference, outputs)
        # regulator left programmed at the (quantized) last requested point
        assert chip.sram_regulator.voltage == pytest.approx(
            twin.sram_regulator.voltage
        )

    def test_sweep_records_inferences(self, deployed_chip):
        chip, _ = deployed_chip
        x = np.zeros((3, 10))
        chip.run_voltage_sweep(x, [0.9, 0.5])
        assert chip.mcu.inference_requests == 6
        assert chip.mcu.asleep


class TestEnergyReporting:
    def test_energy_per_inference_requires_deploy(self, chip):
        with pytest.raises(RuntimeError):
            chip.energy_per_inference()

    def test_energy_per_inference_scales_with_cycles(self, deployed_chip):
        chip, _ = deployed_chip
        cycles = chip.npu.program.total_cycles_per_inference
        energy = chip.energy_per_inference(NOMINAL_OPERATING_POINT)
        per_cycle = chip.energy_model.energy_per_cycle(NOMINAL_OPERATING_POINT)
        assert energy == pytest.approx(cycles * per_cycle)

    def test_efficiency_improves_at_low_voltage_point(self, deployed_chip):
        chip, _ = deployed_chip
        nominal = chip.efficiency_gops_per_watt(NOMINAL_OPERATING_POINT)
        scaled = chip.efficiency_gops_per_watt(OperatingPoint(0.55, 0.5, 17.8e6))
        assert scaled > 2.0 * nominal

    def test_throughput_scales_with_frequency(self, deployed_chip):
        chip, _ = deployed_chip
        fast = chip.throughput_gops(NOMINAL_OPERATING_POINT)
        slow = chip.throughput_gops(OperatingPoint(0.55, 0.5, 17.8e6))
        assert fast / slow == pytest.approx(250.0 / 17.8, rel=1e-6)
