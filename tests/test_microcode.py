"""Unit tests for the microcode compiler and weight placement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import MicrocodeCompiler, WeightPlacement
from repro.nn import Network
from repro.quant import WeightQuantizer
from repro.sram import FaultMap, BitFault, WeightMemorySystem


@pytest.fixture()
def network():
    return Network("10-12-3", seed=0)


@pytest.fixture()
def quantizer():
    return WeightQuantizer(total_bits=16, frac_bits=13)


@pytest.fixture()
def memory():
    return WeightMemorySystem.build(4, 64, 16, seed=9)


class TestWeightPlacement:
    def test_round_robin_pe_assignment(self):
        placement = WeightPlacement((10, 12, 3), num_pes=4, words_per_bank=64)
        layer0 = placement.layers[0]
        assert [n.pe for n in layer0.neurons[:8]] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_addresses_are_contiguous_and_disjoint(self):
        placement = WeightPlacement((10, 12, 3), num_pes=4, words_per_bank=64)
        occupied = {pe: set() for pe in range(4)}
        for layer in placement.layers:
            for neuron in layer.neurons:
                span = set(range(neuron.base_address, neuron.base_address + neuron.fan_in + 1))
                assert not (occupied[neuron.pe] & span)
                occupied[neuron.pe] |= span
        for pe, used in occupied.items():
            assert len(used) == placement.words_used_per_pe[pe]

    def test_capacity_overflow_raises(self):
        with pytest.raises(ValueError, match="does not fit"):
            WeightPlacement((100, 50, 10), num_pes=2, words_per_bank=64)

    def test_weight_address_bounds(self):
        placement = WeightPlacement((4, 3), num_pes=2, words_per_bank=16)
        neuron = placement.layers[0].neuron(0)
        assert neuron.bias_address == neuron.base_address
        assert neuron.weight_address(0) == neuron.base_address + 1
        with pytest.raises(IndexError):
            neuron.weight_address(4)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WeightPlacement((4, 2), num_pes=0, words_per_bank=8)

    def test_store_and_load_roundtrip(self, network, quantizer, memory):
        placement = WeightPlacement(network.widths, len(memory), 64)
        quantized = quantizer.quantize_network(network)
        placement.store(memory, quantized)
        for layer_index in range(len(network.layers)):
            weight_words, bias_words = placement.load_layer_words(
                memory, layer_index, voltage=0.9
            )
            np.testing.assert_array_equal(weight_words, quantized.weight_words[layer_index])
            np.testing.assert_array_equal(bias_words, quantized.bias_words[layer_index])

    def test_store_validates_layer_count(self, network, quantizer, memory):
        placement = WeightPlacement(network.widths, len(memory), 64)
        quantized = quantizer.quantize_network(network)
        quantized.weight_words.pop()
        with pytest.raises(ValueError):
            placement.store(memory, quantized)

    def test_low_voltage_load_corrupts_words(self, network, quantizer, memory):
        placement = WeightPlacement(network.widths, len(memory), 64)
        quantized = quantizer.quantize_network(network)
        placement.store(memory, quantized)
        weight_words, _ = placement.load_layer_words(memory, 0, voltage=0.44)
        assert not np.array_equal(weight_words, quantized.weight_words[0])

    def test_layer_fault_masks_alignment(self, network, quantizer, memory):
        """A fault injected at a known placement location shows up at exactly
        the corresponding position of the layer mask."""
        placement = WeightPlacement(network.widths, len(memory), 64)
        neuron = placement.layers[0].neuron(5)
        fault_maps = [FaultMap(64, 16) for _ in range(len(memory))]
        fault_maps[neuron.pe].add(BitFault(neuron.weight_address(2), 7, 1))
        fault_maps[neuron.pe].add(BitFault(neuron.bias_address, 3, 0))
        weight_and, weight_or, bias_and, bias_or = placement.layer_fault_masks(
            fault_maps, 0, word_bits=16
        )
        assert weight_or[2, 5] == 1 << 7
        assert bias_and[5] == 0xFFFF ^ (1 << 3)
        # everything else untouched
        assert np.count_nonzero(weight_or) == 1
        assert np.count_nonzero(bias_and != 0xFFFF) == 1

    def test_layer_fault_masks_requires_enough_maps(self, network, memory):
        placement = WeightPlacement(network.widths, len(memory), 64)
        with pytest.raises(ValueError):
            placement.layer_fault_masks([FaultMap(64, 16)], 0, 16)

    def test_layer_fault_masks_rejects_undersized_maps(self, network, memory):
        """A fault map that does not cover the placed address range must fail
        loudly, not silently read identity masks from padding."""
        placement = WeightPlacement(network.widths, len(memory), 64)
        small_maps = [FaultMap(4, 16) for _ in range(len(memory))]
        with pytest.raises(IndexError):
            placement.layer_fault_masks(small_maps, 0, 16)

    def test_layer_fault_masks_order_independent(self, network, memory):
        """Masks attach to placements by neuron index, not list position."""
        placement = WeightPlacement(network.widths, len(memory), 64)
        neuron = placement.layers[0].neuron(5)
        fault_maps = [FaultMap(64, 16) for _ in range(len(memory))]
        fault_maps[neuron.pe].add(BitFault(neuron.weight_address(2), 7, 1))
        reference = placement.layer_fault_masks(fault_maps, 0, word_bits=16)
        placement.layers[0].neurons.reverse()
        permuted = placement.layer_fault_masks(fault_maps, 0, word_bits=16)
        for expected, got in zip(reference, permuted):
            np.testing.assert_array_equal(expected, got)

    def test_layer_fault_masks_mixed_bank_sizes(self, network, quantizer, memory):
        """Banks of different depths gather correctly through the padded
        stacked-mask matrix."""
        placement = WeightPlacement(network.widths, len(memory), 64)
        fault_maps = [FaultMap(64 + 16 * index, 16) for index in range(len(memory))]
        neuron = placement.layers[0].neuron(2)
        fault_maps[neuron.pe].add(BitFault(neuron.weight_address(0), 1, 1))
        weight_and, weight_or, bias_and, bias_or = placement.layer_fault_masks(
            fault_maps, 0, word_bits=16
        )
        assert weight_or[0, 2] == 0b10
        assert np.count_nonzero(weight_or) == 1
        assert np.all(weight_and == 0xFFFF)
        assert np.all(bias_and == 0xFFFF) and np.all(bias_or == 0)


class TestMicrocodeCompiler:
    def test_program_structure(self, network, quantizer):
        compiler = MicrocodeCompiler(num_pes=4, words_per_bank=64)
        program = compiler.compile(network, quantizer)
        assert program.topology == (10, 12, 3)
        assert len(program.layers) == 2
        assert program.word_bits == 16

    def test_pass_and_cycle_counts(self, network, quantizer):
        compiler = MicrocodeCompiler(num_pes=4, words_per_bank=64, pipeline_overhead=4)
        program = compiler.compile(network, quantizer)
        layer0, layer1 = program.layers
        assert layer0.passes == 3  # ceil(12 / 4)
        assert layer1.passes == 1  # ceil(3 / 4)
        assert layer0.cycles == 3 * (10 + 1 + 4)
        assert layer1.cycles == 1 * (12 + 1 + 4)
        assert program.total_cycles_per_inference == layer0.cycles + layer1.cycles

    def test_mac_counts(self, network, quantizer):
        program = MicrocodeCompiler(num_pes=4, words_per_bank=64).compile(network, quantizer)
        assert program.total_macs_per_inference == 10 * 12 + 12 * 3
        assert program.total_weight_words == (10 + 1) * 12 + (12 + 1) * 3

    def test_wide_layer_time_multiplexing(self, quantizer):
        wide = Network("8-100-2", seed=0)
        program = MicrocodeCompiler(num_pes=8, words_per_bank=256).compile(wide, quantizer)
        assert program.layers[0].passes == 13  # ceil(100 / 8)

    def test_invalid_compiler_parameters(self):
        with pytest.raises(ValueError):
            MicrocodeCompiler(num_pes=0)
        with pytest.raises(ValueError):
            MicrocodeCompiler(words_per_bank=0)
        with pytest.raises(ValueError):
            MicrocodeCompiler(pipeline_overhead=-1)

    def test_activation_recorded_per_layer(self, quantizer):
        net = Network("4-6-2", hidden_activation="tanh", output_activation="identity", seed=0)
        program = MicrocodeCompiler(num_pes=2, words_per_bank=64).compile(net, quantizer)
        assert program.layers[0].activation == "tanh"
        assert program.layers[1].activation == "identity"
