"""Unit tests for repro.sram.bitcell and calibration constants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sram import (
    BitcellVariationModel,
    EmpiricalVminModel,
    GaussianVminModel,
    calibration,
)


class TestCalibrationConstants:
    def test_anchor_rates_strictly_decreasing_with_voltage(self):
        anchors = sorted(calibration.FIG9A_ANCHORS)
        rates = [rate for _, rate in anchors]
        assert all(a > b for a, b in zip(rates, rates[1:]))

    def test_anchor_range_covers_paper_voltages(self):
        voltages = [v for v, _ in calibration.FIG9A_ANCHORS]
        assert min(voltages) <= calibration.ALL_FAIL_VOLTAGE
        assert max(voltages) >= calibration.FIRST_FAILURE_VOLTAGE

    def test_temperature_coefficient_is_negative(self):
        # below temperature inversion: hotter -> lower Vmin
        assert calibration.TEMPERATURE_COEFFICIENT < 0


class TestGaussianModel:
    def test_sample_shapes_and_types(self):
        model = GaussianVminModel()
        population = model.sample(32, 16, np.random.default_rng(0))
        assert population.vmin_read.shape == (32, 16)
        assert population.preferred_state.shape == (32, 16)
        assert set(np.unique(population.preferred_state)).issubset({0, 1})
        assert population.num_cells == 32 * 16

    def test_sample_statistics_match_parameters(self):
        model = GaussianVminModel(mean=0.46, sigma=0.02)
        population = model.sample(200, 16, np.random.default_rng(1))
        assert np.mean(population.vmin_read) == pytest.approx(0.46, abs=0.005)
        assert np.std(population.vmin_read) == pytest.approx(0.02, rel=0.15)

    def test_failure_probability_monotone_decreasing(self):
        model = GaussianVminModel()
        voltages = np.linspace(0.3, 0.9, 20)
        probabilities = model.failure_probability(voltages)
        assert np.all(np.diff(probabilities) <= 0)

    def test_failure_probability_limits(self):
        model = GaussianVminModel(mean=0.46, sigma=0.02)
        assert model.failure_probability(0.9) < 1e-6
        assert model.failure_probability(0.3) > 0.999

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GaussianVminModel(sigma=0.0)
        with pytest.raises(ValueError):
            GaussianVminModel(preferred_one_probability=1.5)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            GaussianVminModel().sample(0, 16, np.random.default_rng(0))


class TestEmpiricalModel:
    def test_failure_probability_matches_anchors(self):
        model = EmpiricalVminModel()
        for voltage, rate in calibration.FIG9A_ANCHORS:
            assert float(model.failure_probability(voltage)) == pytest.approx(rate, rel=1e-6)

    def test_sampled_population_reproduces_curve(self):
        model = EmpiricalVminModel()
        population = model.sample(4096, 16, np.random.default_rng(2))
        for voltage, rate in [(0.50, 0.0215), (0.46, 0.06), (0.42, 0.60)]:
            empirical = float(np.mean(population.vmin_read > voltage))
            assert empirical == pytest.approx(rate, rel=0.25, abs=0.01)

    def test_clamps_outside_anchor_range(self):
        model = EmpiricalVminModel()
        assert float(model.failure_probability(0.30)) == pytest.approx(
            max(r for _, r in calibration.FIG9A_ANCHORS)
        )
        assert float(model.failure_probability(0.80)) == pytest.approx(
            min(r for _, r in calibration.FIG9A_ANCHORS)
        )

    def test_rejects_non_monotone_anchors(self):
        with pytest.raises(ValueError):
            EmpiricalVminModel(anchors=((0.4, 0.5), (0.5, 0.6)))

    def test_rejects_invalid_rates(self):
        with pytest.raises(ValueError):
            EmpiricalVminModel(anchors=((0.4, 1.5), (0.5, 0.5)))

    def test_needs_two_anchors(self):
        with pytest.raises(ValueError):
            EmpiricalVminModel(anchors=((0.5, 0.5),))


class TestTemperatureShift:
    def test_hotter_lowers_vmin(self):
        vmin = np.array([0.50])
        hot = BitcellVariationModel.effective_vmin(vmin, 90.0)
        cold = BitcellVariationModel.effective_vmin(vmin, -15.0)
        assert hot[0] < vmin[0] < cold[0]

    def test_reference_temperature_is_identity(self):
        vmin = np.array([0.47, 0.51])
        np.testing.assert_allclose(
            BitcellVariationModel.effective_vmin(vmin, calibration.NOMINAL_TEMPERATURE), vmin
        )

    def test_shift_magnitude(self):
        vmin = np.array([0.50])
        shifted = BitcellVariationModel.effective_vmin(vmin, 125.0)
        expected = 0.50 + calibration.TEMPERATURE_COEFFICIENT * 100.0
        assert shifted[0] == pytest.approx(expected)
