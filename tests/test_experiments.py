"""Tests for the experiment drivers (scaled-down parameters).

The benchmark harness exercises the drivers at full scale; these tests run
them with small workloads to verify structure, determinism of the fast
drivers, and the qualitative relationships every regenerated table relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ExperimentResult,
    format_table,
    prepare_benchmark,
    run_fig5,
    run_fig9a,
    run_fig9b,
    run_fig10,
    run_fig11,
    run_fig12,
    run_table1,
    run_table2,
    run_table3,
)
from repro.experiments.fig10_error_vs_voltage import BenchmarkSweep, VoltagePoint


class TestCommonHelpers:
    def test_format_table_alignment(self):
        text = format_table(["a", "long header"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5  # title, header, separator, two data rows
        assert "long header" in lines[1]

    def test_format_table_row_length_check(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["1"]])

    def test_experiment_result_rendering(self):
        result = ExperimentResult(
            experiment="demo", headers=["x"], rows=[["1"]],
            paper_reference={"value": 3}, notes="a note",
        )
        text = result.to_text()
        assert "demo" in text and "paper reference" in text and "a note" in text

    def test_prepare_benchmark_structure(self):
        prepared = prepare_benchmark("inversek2j", num_samples=300, seed=1, epochs=10)
        assert prepared.name == "inversek2j"
        assert len(prepared.train) + len(prepared.test) == 300
        assert prepared.baseline_error < 0.15


class TestEnergyDrivers:
    def test_fig11_structure(self):
        result = run_fig11()
        assert result.nominal.total > result.optimized.total
        assert result.sram_reduction > result.logic_reduction > 1.0
        assert len(result.to_experiment_result().rows) == 3

    def test_table2_scenarios_present(self):
        result = run_table2()
        names = [s.name for s in result.scenarios]
        assert names == ["HighPerf", "EnOpt_split", "EnOpt_joint"]
        for scenario in result.scenarios:
            assert scenario.reduction > 1.0
            assert scenario.matic_energy < scenario.baseline_energy

    def test_table2_accuracy_floor_respected(self):
        result = run_table2(accuracy_floor_voltage=0.60)
        assert result.scenario("EnOpt_split").matic_point.sram_voltage >= 0.60
        assert result.scenario("EnOpt_joint").matic_point.sram_voltage >= 0.60

    def test_table3_rows(self):
        result = run_table3(num_samples=300)
        assert result.snnac_matic.efficiency_gops_per_w > result.snnac_nominal.efficiency_gops_per_w
        assert len(result.rows) == 6

    def test_fig9a_small_geometry(self):
        result = run_fig9a(voltages=np.array([0.44, 0.50, 0.54]), num_words=256)
        rates = [p.measured_rate for p in result.points]
        assert rates[0] > rates[1] > rates[2]


class TestTrainingDrivers:
    def test_fig5_small(self):
        result = run_fig5(
            fault_rates=(0.01, 0.05), num_samples=600, adaptive_epochs=15, seed=2
        )
        assert len(result.points) == 2
        for point in result.points:
            assert 0.0 <= point.adaptive_error <= 1.0
            assert 0.0 <= point.naive_error <= 1.0
        assert result.points[0].adaptive_error <= result.points[0].naive_error + 0.05

    def test_fig9b_small(self):
        result = run_fig9b(
            benchmark="inversek2j", hidden_widths=(2, 8, 16), num_samples=400, epochs=15
        )
        assert [p.topology for p in result.points] == ["2-2-2", "2-8-2", "2-16-2"]
        params = [p.num_parameters for p in result.points]
        assert params == sorted(params)
        # wider models fit at least as well as the tiny 2-hidden-unit one
        assert result.points[-1].test_error <= result.points[0].test_error + 0.02

    def test_fig10_single_benchmark_small(self):
        result = run_fig10(
            benchmarks=("inversek2j",),
            voltages=(0.90, 0.50),
            num_samples=400,
            adaptive_epochs=15,
            seed=3,
        )
        sweep = result.sweep_for("inversek2j")
        assert len(sweep.points) == 2
        nominal = sweep.point_at(0.90)
        scaled = sweep.point_at(0.50)
        assert nominal.bit_fault_rate == 0.0
        assert scaled.bit_fault_rate > 0.0
        assert scaled.adaptive_error <= scaled.naive_error + 1e-9
        with pytest.raises(KeyError):
            sweep.point_at(0.77)
        with pytest.raises(KeyError):
            result.sweep_for("mnist")

    def test_fig12_small(self):
        result = run_fig12(
            benchmark="inversek2j", num_samples=400, adaptive_epochs=15, seed=4
        )
        assert len(result.steps) == 11  # 25→-15 in 15° steps, then -15→90
        assert result.voltage_temperature_correlation < 0.0
        for step in result.steps:
            assert 0.40 <= step.sram_voltage <= 0.62
            assert step.vmin_shift == 0.0  # no aging by default

    def test_fig12_rejects_sharding_with_clear_error(self):
        from repro.experiments.engine import ShardSpec, SweepRunner

        with pytest.raises(ValueError, match="stateful and cannot be sharded"):
            run_fig12(
                benchmark="inversek2j",
                num_samples=400,
                adaptive_epochs=15,
                seed=4,
                runner=SweepRunner(workers=1, shard=ShardSpec(0, 2)),
            )

    def test_fig12_cli_rejects_shard_flag(self, capsys):
        from repro.experiments.fig12_temperature import main

        with pytest.raises(SystemExit) as info:
            main(["--shard", "0/2", "--num-samples", "400"])
        assert info.value.code != 0
        assert "cannot be sharded" in capsys.readouterr().err

    def test_fig12_accepts_workers_1_runner(self):
        from repro.experiments.engine import SweepRunner

        result = run_fig12(
            benchmark="inversek2j",
            num_samples=400,
            adaptive_epochs=15,
            seed=4,
            runner=SweepRunner(workers=1),
        )
        assert len(result.steps) == 11

    def test_fig12_aging_trajectory_accumulates_vmin_shift(self):
        result = run_fig12(
            benchmark="inversek2j",
            num_samples=400,
            adaptive_epochs=15,
            seed=4,
            dwell_hours=2.0,
            aging_vmin_shift_per_hour=1e-4,
        )
        shifts = [step.vmin_shift for step in result.steps]
        assert shifts == sorted(shifts)
        assert shifts[0] == pytest.approx(0.0)
        # 11 steps x 2 h dwell at 1e-4 V/h: last step carries 10x2x1e-4 V
        assert shifts[-1] == pytest.approx(2e-3)
        # an aged chip cannot regulate below a fresh one at the same step
        fresh = run_fig12(
            benchmark="inversek2j", num_samples=400, adaptive_epochs=15, seed=4
        )
        assert result.steps[-1].sram_voltage >= fresh.steps[-1].sram_voltage - 1e-9


class TestTable1Construction:
    def _synthetic_sweep(self):
        sweep = BenchmarkSweep(benchmark="mnist", metric="classification", nominal_error=0.10)
        for voltage, naive, adaptive in [
            (0.90, 0.10, 0.10),
            (0.50, 0.60, 0.15),
            (0.46, 0.80, 0.20),
        ]:
            sweep.points.append(
                VoltagePoint(voltage=voltage, bit_fault_rate=0.0, naive_error=naive,
                             adaptive_error=adaptive)
            )
        return sweep

    def test_aei_computation(self):
        sweep = self._synthetic_sweep()
        assert sweep.average_error_increase("naive") == pytest.approx((0.5 + 0.7) / 2)
        assert sweep.average_error_increase("adaptive") == pytest.approx((0.05 + 0.10) / 2)

    def test_table1_from_synthetic_sweep(self):
        from repro.experiments.fig10_error_vs_voltage import Fig10Result

        result = run_table1(benchmarks=("mnist",), sweep=Fig10Result(sweeps=[self._synthetic_sweep()]))
        row = result.rows[0]
        assert row.naive_050 == pytest.approx(0.60)
        assert row.adaptive_046 == pytest.approx(0.20)
        assert row.aei_reduction == pytest.approx(8.0)
        assert result.average_aei_reduction == pytest.approx(8.0)
        text = result.to_experiment_result().to_text()
        assert "AEI" in text
