"""Unit tests for the SRAM profiler, voltage regulator, and variation models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sram import (
    FAST_CORNER,
    SLOW_CORNER,
    TYPICAL_CORNER,
    EnvironmentalConditions,
    ProcessCorner,
    SramBank,
    SramProfiler,
    TemperatureChamber,
    VoltageRegulator,
    WeightMemorySystem,
)


class TestSramProfiler:
    def test_no_faults_at_nominal(self):
        bank = SramBank(64, 16, seed=1)
        report = SramProfiler().profile_bank(bank, 0.9)
        assert report.fault_map.num_faults == 0
        assert report.fault_rate == 0.0

    def test_profiled_map_matches_ground_truth(self):
        bank = SramBank(128, 16, seed=2)
        report = SramProfiler().profile_bank(bank, 0.47)
        assert report.fault_map == bank.fault_map_at(0.47)

    def test_profile_restores_contents(self):
        bank = SramBank(64, 16, seed=3)
        deployed = np.arange(64, dtype=np.uint64) * 7 % 65536
        bank.write_all(deployed)
        SramProfiler().profile_bank(bank, 0.45)
        np.testing.assert_array_equal(bank.stored_words(), deployed)

    def test_profile_without_restore(self):
        bank = SramBank(64, 16, seed=3)
        deployed = np.full(64, 0x1234, dtype=np.uint64)
        bank.write_all(deployed)
        SramProfiler(restore_contents=False).profile_bank(bank, 0.45)
        assert not np.array_equal(bank.stored_words(), deployed)

    def test_read_after_read_errors_reported(self):
        bank = SramBank(128, 16, seed=4)
        report = SramProfiler().profile_bank(bank, 0.46)
        assert report.read_after_read_errors > 0
        assert report.read_after_write_errors > 0
        assert set(report.pattern_errors) == {"zeros", "ones"}

    def test_custom_patterns(self):
        bank = SramBank(32, 16, seed=5)
        profiler = SramProfiler(test_patterns={"checker": 0xAAAA})
        report = profiler.profile_bank(bank, 0.9)
        assert list(report.pattern_errors) == ["checker"]

    @pytest.mark.parametrize("voltage", [0.40, 0.44, 0.46, 0.48, 0.50, 0.53, 0.90])
    def test_vectorized_profile_matches_ground_truth_across_voltages(self, voltage):
        """The vectorized recording path recovers exactly the map the
        behavioural model would inflict, from near-total failure to none."""
        bank = SramBank(256, 16, seed=7)
        report = SramProfiler().profile_bank(bank, voltage)
        truth = bank.fault_map_at(voltage)
        assert report.fault_map == truth
        assert report.fault_map.num_faults == truth.num_faults

    def test_profile_excludes_cell_with_vmin_at_rail(self):
        """A cell whose V_min,read equals the supply exactly is safe (strict
        inequality) and must not be profiled as stuck; a cell just above the
        rail must be."""
        voltage = 0.5
        bank = SramBank(16, 8, seed=3)
        bank.cells.vmin_read[:] = 0.30
        bank.cells.vmin_read[4, 2] = voltage
        bank.cells.vmin_read[4, 3] = voltage + 0.01
        bank.cells.preferred_state[:] = 1
        report = SramProfiler().profile_bank(bank, voltage)
        positions = {(f.address, f.bit) for f in report.fault_map.faults}
        assert (4, 2) not in positions
        assert (4, 3) in positions
        assert report.fault_map == bank.fault_map_at(voltage)

    def test_invalid_voltage(self):
        bank = SramBank(16, 16, seed=0)
        with pytest.raises(ValueError):
            SramProfiler().profile_bank(bank, 0.0)

    def test_memory_system_profiling(self):
        memory = WeightMemorySystem.build(3, 64, 16, seed=6)
        reports = SramProfiler().profile_memory_system(memory, 0.46)
        assert len(reports) == 3
        assert all(r.voltage == 0.46 for r in reports)

    def test_failure_rate_curve_monotone(self):
        bank = SramBank(256, 16, seed=7)
        voltages = np.array([0.42, 0.46, 0.50, 0.54])
        rates = SramProfiler().failure_rate_curve(bank, voltages)
        assert np.all(np.diff(rates) <= 0)

    def test_temperature_dependence(self):
        bank = SramBank(256, 16, seed=8)
        profiler = SramProfiler()
        cold = profiler.profile_bank(bank, 0.47, temperature=-15.0).fault_rate
        hot = profiler.profile_bank(bank, 0.47, temperature=90.0).fault_rate
        assert cold >= hot


class TestVoltageRegulator:
    def test_initial_quantization(self):
        regulator = VoltageRegulator(initial_voltage=0.907, step=0.01)
        assert regulator.voltage == pytest.approx(0.91)

    def test_set_voltage_clamps_to_range(self):
        regulator = VoltageRegulator(min_voltage=0.4, max_voltage=1.0)
        assert regulator.set_voltage(2.0) == pytest.approx(1.0)
        assert regulator.set_voltage(0.1) == pytest.approx(0.4)

    def test_step_up_down(self):
        regulator = VoltageRegulator(initial_voltage=0.5, step=0.01)
        assert regulator.step_down() == pytest.approx(0.49)
        assert regulator.step_up() == pytest.approx(0.5)

    def test_adjust(self):
        regulator = VoltageRegulator(initial_voltage=0.5, step=0.005)
        assert regulator.adjust(-0.02) == pytest.approx(0.48)

    def test_history_recorded(self):
        regulator = VoltageRegulator(initial_voltage=0.9)
        regulator.set_voltage(0.6)
        regulator.set_voltage(0.55)
        assert regulator.history == pytest.approx([0.9, 0.6, 0.55])
        regulator.reset_history()
        assert regulator.history == pytest.approx([0.55])

    def test_quantizes_to_step(self):
        regulator = VoltageRegulator(step=0.025)
        assert regulator.set_voltage(0.513) == pytest.approx(0.525)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            VoltageRegulator(step=0.0)
        with pytest.raises(ValueError):
            VoltageRegulator(min_voltage=1.0, max_voltage=0.5)


class TestVariationModels:
    def test_environmental_conditions_with_temperature(self):
        conditions = EnvironmentalConditions(temperature=25.0, supply_noise=0.01)
        hot = conditions.with_temperature(85.0)
        assert hot.temperature == 85.0
        assert hot.supply_noise == 0.01

    def test_process_corners(self):
        assert TYPICAL_CORNER.vmin_shift == 0.0
        assert SLOW_CORNER.vmin_shift > 0.0
        assert FAST_CORNER.vmin_shift < 0.0
        with pytest.raises(ValueError):
            ProcessCorner("bad", leakage_scale=0.0)

    def test_chamber_schedule_shape(self):
        chamber = TemperatureChamber(start=25.0, low=-15.0, high=90.0, step=15.0)
        schedule = chamber.schedule()
        # starts at the nominal temperature, dips to the low point, ends high
        assert schedule[0] == 25.0
        assert schedule.min() == -15.0
        assert schedule[-1] == 90.0
        # no immediate duplicates
        assert all(abs(a - b) > 1e-9 for a, b in zip(schedule, schedule[1:]))

    def test_chamber_conditions(self):
        chamber = TemperatureChamber()
        conditions = chamber.conditions()
        assert len(conditions) == len(chamber.schedule())
        assert all(isinstance(c, EnvironmentalConditions) for c in conditions)

    def test_chamber_validation(self):
        with pytest.raises(ValueError):
            TemperatureChamber(step=0.0)
        with pytest.raises(ValueError):
            TemperatureChamber(start=100.0, low=-15.0, high=90.0)
