"""The scaling_geometry driver: structure, determinism, sharding, and the
capacity-wall / spill reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.cache import ArtifactCache
from repro.experiments.engine import ShardIncompleteError, ShardSpec, SweepRunner
from repro.experiments.scaling_geometry import (
    GeometryPoint,
    run_scaling_geometry,
)


@pytest.fixture(scope="module")
def cache(tmp_path_factory):
    return ArtifactCache(root=tmp_path_factory.mktemp("scaling-cache"))


KWARGS = dict(
    workloads=("inversek2j", "synth/ae-i16-b4"),
    num_pes_values=(2, 8),
    words_per_bank_values=(16, 128),
    num_samples=160,
    epochs=2,
    seed=3,
)


@pytest.fixture(scope="module")
def result(cache):
    return run_scaling_geometry(runner=SweepRunner(workers=1), cache=cache, **KWARGS)


class TestScalingGeometry:
    def test_grid_shape_and_order(self, result):
        assert len(result.points) == 2 * 2 * 2
        assert [
            (p.workload, p.num_pes, p.words_per_bank) for p in result.points
        ] == [
            (name, pes, words)
            for name in KWARGS["workloads"]
            for pes in KWARGS["num_pes_values"]
            for words in KWARGS["words_per_bank_values"]
        ]

    def test_capacity_wall_reported_not_raised(self, result):
        walls = [p for p in result.points if not p.fits]
        assert walls  # (2 PEs, 16 words) cannot hold either workload
        for point in walls:
            assert point.utilization > 1
            assert point.error is None

    def test_error_is_geometry_invariant(self, result):
        for name in KWARGS["workloads"]:
            errors = {p.error for p in result.points_for(name) if p.fits}
            assert len(errors) == 1

    def test_cycles_drop_with_more_pes(self, result):
        for name in KWARGS["workloads"]:
            fitting = [p for p in result.points_for(name) if p.fits]
            by_geometry = {(p.num_pes, p.words_per_bank): p for p in fitting}
            few = by_geometry.get((2, 128))
            many = by_geometry.get((8, 128))
            assert few is not None and many is not None
            assert many.cycles_per_inference < few.cycles_per_inference

    def test_energy_measured_at_every_fitting_point(self, result):
        for p in (p for p in result.points if p.fits):
            assert p.energy_per_inference_pj > 0
            assert p.efficiency_gops_per_w > 0

    def test_spill_pays_extra_passes(self, result):
        # inversek2j fits 8x16 only by spilling its hidden layer; those
        # extra passes must show up as a higher cycle count than the same
        # ring with roomy banks
        by_geometry = {
            (p.num_pes, p.words_per_bank): p
            for p in result.points_for("inversek2j")
            if p.fits
        }
        tight = by_geometry[(8, 16)]
        roomy = by_geometry[(8, 128)]
        assert tight.spilled_neurons > 0 and roomy.spilled_neurons == 0
        assert tight.cycles_per_inference > roomy.cycles_per_inference
        # identical model and voltage: the SRAM traffic is geometry-invariant
        assert tight.sram_reads == roomy.sram_reads

    def test_spill_reported_on_tight_banks(self, result):
        tight = [p for p in result.points if p.fits and p.words_per_bank == 16]
        assert any(p.spilled_neurons > 0 for p in tight)

    def test_rendering(self, result):
        text = result.to_experiment_result().to_text()
        assert "does not fit" in text
        assert "inversek2j" in text and "synth/ae-i16-b4" in text

    def test_deterministic_across_runs(self, cache, result):
        again = run_scaling_geometry(
            runner=SweepRunner(workers=1), cache=cache, **KWARGS
        )
        for a, b in zip(result.points, again.points):
            assert (a.workload, a.num_pes, a.words_per_bank) == (
                b.workload,
                b.num_pes,
                b.words_per_bank,
            )
            assert a.fits == b.fits
            if a.fits:
                assert a.error == b.error
                assert a.cycles_per_inference == b.cycles_per_inference
                assert a.energy_per_inference_pj == b.energy_per_inference_pj

    def test_two_way_shard_merge_is_bit_identical(self, cache, result):
        def shard_runner(index):
            return SweepRunner(
                workers=1,
                shard=ShardSpec(index, 2),
                shard_store=cache,
                sweep_label="test-scaling-shard",
            )

        try:
            run_scaling_geometry(runner=shard_runner(0), cache=cache, **KWARGS)
        except ShardIncompleteError:
            pass  # expected until the other shard publishes
        merged = run_scaling_geometry(runner=shard_runner(1), cache=cache, **KWARGS)
        reference_rows = [vars(p) for p in result.points]
        merged_rows = [vars(p) for p in merged.points]
        assert merged_rows == reference_rows


class TestGeometryPoint:
    def test_defaults_mark_unmeasured_fields(self):
        point = GeometryPoint(
            workload="w", num_pes=2, words_per_bank=4, fits=False, utilization=2.0
        )
        assert point.error is None
        assert point.cycles_per_inference == 0
        # equality must survive the shard store's pickle round-trip (no NaN)
        import pickle

        assert pickle.loads(pickle.dumps(point)) == point
