"""Tests for frozen per-layer quantization formats and flow format consistency."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matic import MaticFlow
from repro.nn import Network
from repro.quant import FrozenWeightQuantizer, WeightQuantizer


class TestFrozenWeightQuantizer:
    def test_freeze_returns_pinned_formats(self):
        network = Network("6-5-3", seed=0)
        base = WeightQuantizer(total_bits=16)
        formats = base.layer_formats(network)
        frozen = base.freeze(formats)
        assert isinstance(frozen, FrozenWeightQuantizer)
        assert frozen.layer_formats(network) == formats

    def test_frozen_formats_ignore_weight_changes(self):
        network = Network("6-5-3", seed=0)
        base = WeightQuantizer(total_bits=16)
        frozen = base.freeze(base.layer_formats(network))
        before = frozen.layer_formats(network)
        # grow the weights far beyond the original range
        network.layers[0].weights *= 100.0
        after = frozen.layer_formats(network)
        assert before == after
        # while a plain range-fitted quantizer would pick a wider format
        refit = base.layer_formats(network)
        assert refit[0].weight_format.frac_bits < before[0].weight_format.frac_bits

    def test_layer_count_mismatch_raises(self):
        network = Network("6-5-3", seed=0)
        other = Network("6-5-4-3", seed=0)
        base = WeightQuantizer(total_bits=16)
        frozen = base.freeze(base.layer_formats(network))
        with pytest.raises(ValueError):
            frozen.layer_formats(other)

    def test_requires_formats(self):
        with pytest.raises(ValueError):
            FrozenWeightQuantizer(16, [])

    def test_quantize_network_uses_frozen_formats(self):
        network = Network("4-3-2", seed=1)
        base = WeightQuantizer(total_bits=16)
        frozen = base.freeze(base.layer_formats(network))
        network.layers[0].weights *= 50.0  # would overflow the frozen range
        quantized = frozen.quantize_network(network)
        decoded = quantized.to_float()[0][0]
        # values saturate at the frozen format's range instead of refitting
        fmt = quantized.layer_formats[0].weight_format
        assert np.max(decoded) <= fmt.max_value
        assert np.min(decoded) >= fmt.min_value


class TestFlowFormatConsistency:
    def test_flow_quantizer_for_freezes_initial_formats(self):
        network = Network("6-5-3", seed=0)
        flow = MaticFlow(word_bits=16, frac_bits=None)
        quantizer = flow.quantizer_for(network)
        assert isinstance(quantizer, FrozenWeightQuantizer)
        reference = WeightQuantizer(16).layer_formats(network)
        assert quantizer.layer_formats(network) == reference

    def test_flow_with_explicit_frac_bits_still_freezes(self):
        network = Network("6-5-3", seed=0)
        flow = MaticFlow(word_bits=16, frac_bits=12)
        quantizer = flow.quantizer_for(network)
        formats = quantizer.layer_formats(network)
        assert all(f.weight_format.frac_bits == 12 for f in formats)

    def test_flow_word_bits_respected(self):
        network = Network("6-5-3", seed=0)
        flow = MaticFlow(word_bits=12, frac_bits=None)
        quantizer = flow.quantizer_for(network)
        formats = quantizer.layer_formats(network)
        assert all(f.weight_format.total_bits == 12 for f in formats)
