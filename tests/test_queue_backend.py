"""Chaos tests for the elastic queue backend, its leases, and the fault harness.

The tests here run real worker *processes* against a real shared-directory
queue and kill them mid-flight: the acceptance bar is that the merged sweep
stays bit-identical to :class:`SerialBackend` no matter which workers die,
that a restarted coordinator recomputes nothing already published, and that
a poisonous task is quarantined after exactly ``retries + 1`` attempts
instead of deadlocking the sweep.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.experiments.cache import (
    ArtifactCache,
    acquire_lease,
    lease_expired,
    read_lease,
    release_lease,
    renew_lease,
    steal_lease,
)
from repro.experiments.engine import (
    QuarantinedTask,
    SweepRunner,
    expand_grid,
    resolve_backend,
    retry_delay,
)
from repro.experiments.faults import (
    ENV_FAULT_PLAN,
    DelayTask,
    FaultPlan,
    KillWorker,
    SuppressHeartbeat,
)
from repro.experiments.queue import DEFAULT_QUEUE_RETRIES, QueueBackend


def _log_execution(log_path, tag):
    # O_APPEND keeps concurrent small writes whole: one line per execution
    with open(log_path, "a") as handle:
        handle.write(f"{tag}\n")


def _log_counts(log_path):
    try:
        lines = open(log_path).read().split()
    except OSError:
        return {}
    counts: dict[str, int] = {}
    for line in lines:
        counts[line] = counts.get(line, 0) + 1
    return counts


def _draw_worker(shared, task):
    rng = np.random.default_rng(task.seed)
    return {
        "voltage": task.voltage,
        "offset": shared["offset"],
        "draw": float(rng.uniform()),
    }


def _logged_worker(shared, task):
    _log_execution(shared["log"], f"{task.voltage}")
    return _draw_worker(shared, task)


def _poison_worker(shared, task):
    _log_execution(shared["log"], f"{task.voltage}")
    if task.voltage == shared["bad"]:
        raise RuntimeError("injected poison")
    return task.voltage * 2.0


def _grid(n=8, seed=17):
    return expand_grid(
        voltages=tuple(round(0.40 + 0.02 * i, 2) for i in range(n)), seed=seed
    )


@pytest.fixture
def store(tmp_path):
    return ArtifactCache(root=tmp_path / "cache")


def _queue_backend(store, **kw):
    kw.setdefault("lease_seconds", 10.0)
    kw.setdefault("poll_seconds", 0.01)
    return QueueBackend(store=store, **kw)


def _runner(backend, store, **kw):
    kw.setdefault("workers", 2)
    kw.setdefault("sweep_label", "queue-test")
    return SweepRunner(backend=backend, shard_store=store, **kw)


class TestLeaseFiles:
    """The three filesystem atomics every queue guarantee rests on."""

    def test_acquire_is_exclusive(self, tmp_path):
        path = tmp_path / "task.lease"
        assert acquire_lease(path, "w0", 5.0) is True
        assert acquire_lease(path, "w1", 5.0) is False
        lease = read_lease(path)
        assert lease["owner"] == "w0"
        assert lease["heartbeat_deadline"] > lease["acquired"]
        assert lease["hard_deadline"] is None

    def test_fresh_lease_not_expired(self, tmp_path):
        path = tmp_path / "task.lease"
        acquire_lease(path, "w0", 30.0)
        assert lease_expired(read_lease(path)) is False

    def test_missed_heartbeats_expire(self, tmp_path):
        path = tmp_path / "task.lease"
        acquire_lease(path, "w0", 5.0)
        lease = read_lease(path)
        assert lease_expired(lease, now=lease["heartbeat_deadline"] + 0.1) is True

    def test_renew_pushes_heartbeat_deadline(self, tmp_path):
        path = tmp_path / "task.lease"
        acquire_lease(path, "w0", 0.1)
        before = read_lease(path)["heartbeat_deadline"]
        assert renew_lease(path, "w0", 60.0) is True
        assert read_lease(path)["heartbeat_deadline"] > before

    def test_renew_requires_ownership(self, tmp_path):
        path = tmp_path / "task.lease"
        acquire_lease(path, "w0", 5.0)
        assert renew_lease(path, "impostor", 5.0) is False
        assert read_lease(path)["owner"] == "w0"

    def test_hard_deadline_survives_renewal(self, tmp_path):
        """--task-timeout is absolute: heartbeats cannot extend it."""
        path = tmp_path / "task.lease"
        hard = time.time() + 0.5
        acquire_lease(path, "w0", 5.0, hard_deadline=hard)
        assert renew_lease(path, "w0", 3600.0) is True
        assert lease_expired(read_lease(path), now=hard + 0.1) is True

    def test_steal_has_one_winner(self, tmp_path):
        path = tmp_path / "task.lease"
        acquire_lease(path, "w0", 5.0)
        stolen = steal_lease(path)
        assert stolen["owner"] == "w0"
        assert steal_lease(path) is None  # a second stealer loses
        assert not path.exists()

    def test_renew_after_steal_fails(self, tmp_path):
        path = tmp_path / "task.lease"
        acquire_lease(path, "w0", 5.0)
        steal_lease(path)
        assert renew_lease(path, "w0", 5.0) is False

    def test_malformed_lease_counts_as_expired(self, tmp_path):
        path = tmp_path / "task.lease"
        path.write_text(json.dumps({"owner": "w0"}))  # no deadlines at all
        assert lease_expired(read_lease(path)) is True
        path.write_text("not json")
        assert read_lease(path) is None
        assert lease_expired(None) is True

    def test_release_is_idempotent(self, tmp_path):
        path = tmp_path / "task.lease"
        acquire_lease(path, "w0", 5.0)
        release_lease(path)
        release_lease(path)  # releasing an absent lease must not raise
        assert not path.exists()


class TestRetryDelay:
    def test_deterministic(self):
        assert retry_delay(0.5, "abc", 2) == retry_delay(0.5, "abc", 2)

    def test_exponential_with_bounded_jitter(self):
        for attempt in (1, 2, 3, 4):
            base = 0.5 * 2 ** (attempt - 1)
            delay = retry_delay(0.5, "abc", attempt)
            assert 0.5 * base <= delay < 1.5 * base

    def test_cap(self):
        assert retry_delay(0.5, "abc", 50, cap=60.0) == 60.0

    def test_jitter_desynchronizes_digests(self):
        delays = {retry_delay(0.5, f"digest-{i}", 1) for i in range(8)}
        assert len(delays) == 8


class TestFaultPlan:
    def _plan(self):
        return FaultPlan(
            rules=(
                KillWorker(worker=0, after_tasks=1, phase="publish"),
                DelayTask(worker=1, seconds=0.25, every=2),
                SuppressHeartbeat(worker=2, after_tasks=1),
            )
        )

    def test_json_round_trip(self):
        plan = self._plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_env_round_trip(self, monkeypatch):
        plan = self._plan()
        env: dict[str, str] = {}
        plan.to_env(env)
        monkeypatch.setenv(ENV_FAULT_PLAN, env[ENV_FAULT_PLAN])
        assert FaultPlan.from_env() == plan

    def test_from_env_absent(self, monkeypatch):
        monkeypatch.delenv(ENV_FAULT_PLAN, raising=False)
        assert FaultPlan.from_env() is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.from_json('[{"kind": "meteor", "worker": 0}]')

    def test_kill_phase_validated(self):
        with pytest.raises(ValueError, match="phase"):
            KillWorker(worker=0, phase="mid-air")

    def test_rules_dispatch_by_worker_index(self):
        plan = self._plan()
        # worker 2 is heartbeat-suppressed after 1 task; worker 0 is not
        assert plan.for_worker(2).heartbeat_allowed(0) is True
        assert plan.for_worker(2).heartbeat_allowed(1) is False
        assert plan.for_worker(0).heartbeat_allowed(100) is True

    def test_seeded_kill_point_is_deterministic(self):
        rule = KillWorker(worker=0, after_tasks=None)
        first = FaultPlan(rules=(rule,), seed=7).for_worker(0)._kill
        second = FaultPlan(rules=(rule,), seed=7).for_worker(0)._kill
        assert first == second
        assert 1 <= first[0] <= 3

    def test_delay_fires_every_nth_claim(self, monkeypatch):
        naps: list[float] = []
        monkeypatch.setattr(
            "repro.experiments.faults.time.sleep", lambda s: naps.append(s)
        )
        injector = self._plan().for_worker(1)
        for completed in range(4):
            injector.on_claim(completed)
        assert naps == [0.25, 0.25]  # claims 2 and 4 only


class TestQueueBackend:
    def test_resolve_backend_accepts_queue(self):
        assert isinstance(resolve_backend("queue"), QueueBackend)

    def test_env_selects_queue_backend(self, monkeypatch, store):
        monkeypatch.setenv("REPRO_SWEEP_BACKEND", "queue")
        tasks = _grid(4)
        shared = {"offset": 2}
        runner = SweepRunner(workers=2, shard_store=store, sweep_label="env-queue")
        results = runner.map(_draw_worker, tasks, shared=shared)
        serial = SweepRunner(workers=1).map(_draw_worker, tasks, shared=shared)
        assert results == serial

    def test_matches_serial_bit_identical(self, store):
        tasks = _grid(8)
        shared = {"offset": 4}
        backend = _queue_backend(store)
        queue = _runner(backend, store, workers=3).map(
            _draw_worker, tasks, shared=shared
        )
        serial = SweepRunner(workers=1).map(_draw_worker, tasks, shared=shared)
        assert queue == serial
        assert backend.last_stats["tasks"] == 8
        assert backend.last_stats["enqueued"] == 8
        assert backend.last_stats["quarantined"] == 0
        # a fully settled sweep retires its queue directory
        queue_root = store.root / "queue"
        assert not queue_root.exists() or not any(queue_root.iterdir())

    def test_one_worker_keeps_queue_semantics(self, store):
        """SweepRunner must not downgrade the queue to in-process serial."""
        tasks = _grid(3)
        backend = _queue_backend(store)
        results = _runner(backend, store, workers=1).map(
            _draw_worker, tasks, shared={"offset": 0}
        )
        assert len(results) == 3
        assert backend.last_stats["enqueued"] == 3  # the queue actually ran

    def test_kill_two_workers_mid_sweep_bit_identical(self, store):
        """The ISSUE's chaos proof: 4 workers, 2 SIGKILLed, merged map intact.

        Worker 0 dies holding a freshly-claimed lease (recovery = expiry +
        steal + re-execute); worker 1 dies right after a clean publish.
        """
        plan = FaultPlan(
            rules=(
                KillWorker(worker=0, after_tasks=1, phase="claim"),
                KillWorker(worker=1, after_tasks=1, phase="publish"),
            )
        )
        backend = _queue_backend(
            store, lease_seconds=0.4, respawn=False, backoff=0.02, fault_plan=plan
        )
        tasks = _grid(10)
        shared = {"offset": 7}
        chaos = _runner(backend, store, workers=4).map(
            _draw_worker, tasks, shared=shared
        )
        serial = SweepRunner(workers=1).map(_draw_worker, tasks, shared=shared)
        assert chaos == serial
        assert backend.last_stats["worker_deaths"] == 2
        assert backend.last_stats["quarantined"] == 0
        assert backend.quarantined == []

    def test_restart_recomputes_nothing(self, store, tmp_path):
        tasks = _grid(8)
        shared = {"offset": 1, "log": str(tmp_path / "executions.log")}
        first_backend = _queue_backend(store)
        first = _runner(first_backend, store).map(_logged_worker, tasks, shared=shared)
        counts = _log_counts(shared["log"])
        assert sorted(counts) == sorted(str(t.voltage) for t in tasks)
        assert set(counts.values()) == {1}
        # a brand-new coordinator over the same store recalls everything
        second_backend = _queue_backend(store)
        second = _runner(second_backend, store).map(
            _logged_worker, tasks, shared=shared
        )
        assert second == first
        assert second_backend.last_stats["recalled"] == 8
        assert second_backend.last_stats["enqueued"] == 0
        assert _log_counts(shared["log"]) == counts  # zero recomputation

    def test_interrupted_coordinator_resumes_exactly_once(self, store, tmp_path):
        """Kill the coordinator mid-sweep; the resume finishes the remainder.

        Every task executes exactly once across both incarnations — the
        interrupted run's published results are never recomputed.
        """
        tasks = _grid(8)
        shared = {"offset": 5, "log": str(tmp_path / "executions.log")}
        backend = _queue_backend(store)
        execution = _runner(backend, store).submit(_logged_worker, tasks, shared=shared)
        stream = execution.as_completed()
        consumed = [next(stream) for _ in range(2)]
        assert len(consumed) == 2
        execution.close()  # the "coordinator killed mid-sweep" moment
        # an abandoned sweep keeps its queue directory for the resume
        assert any((store.root / "queue").iterdir())
        resumed_backend = _queue_backend(store)
        resumed = _runner(resumed_backend, store).map(
            _logged_worker, tasks, shared=shared
        )
        reference = SweepRunner(workers=1).map(
            _logged_worker,
            tasks,
            shared={"offset": 5, "log": str(tmp_path / "reference.log")},
        )
        assert resumed == reference
        counts = _log_counts(shared["log"])
        assert sorted(counts) == sorted(str(t.voltage) for t in tasks)
        assert set(counts.values()) == {1}

    def test_overlapping_sweeps_dedup_through_store(self, store, tmp_path):
        """Two sweeps over overlapping grids share every common task."""
        shared = {"offset": 2, "log": str(tmp_path / "executions.log")}
        narrow = _grid(5)
        _runner(_queue_backend(store), store).map(_logged_worker, narrow, shared=shared)
        wide_backend = _queue_backend(store)
        wide = _runner(wide_backend, store).map(_logged_worker, _grid(8), shared=shared)
        assert len(wide) == 8
        assert wide_backend.last_stats["recalled"] == 5
        assert wide_backend.last_stats["enqueued"] == 3
        counts = _log_counts(shared["log"])
        assert len(counts) == 8 and set(counts.values()) == {1}

    def test_poison_quarantined_after_exact_budget(self, store, tmp_path):
        tasks = _grid(5)
        shared = {
            "offset": 0,
            "log": str(tmp_path / "attempts.log"),
            "bad": tasks[2].voltage,
        }
        backend = _queue_backend(store, backoff=0.01)
        results = _runner(backend, store, retries=1).map(
            _poison_worker, tasks, shared=shared
        )
        poison = results[2]
        assert isinstance(poison, QuarantinedTask)
        assert poison.is_quarantined
        assert poison.attempts == 2  # exactly retries + 1
        assert "injected poison" in poison.errors[-1]
        assert f"voltage={tasks[2].voltage}" in poison.describe()
        healthy = [r for i, r in enumerate(results) if i != 2]
        assert healthy == [t.voltage * 2.0 for t in tasks if t is not tasks[2]]
        assert backend.last_stats["quarantined"] == 1
        assert backend.quarantined == [poison]
        assert _log_counts(shared["log"])[str(tasks[2].voltage)] == 2

    def test_poison_default_retry_budget(self, store, tmp_path):
        tasks = _grid(3)
        shared = {
            "offset": 0,
            "log": str(tmp_path / "attempts.log"),
            "bad": tasks[0].voltage,
        }
        backend = _queue_backend(store, backoff=0.01)
        results = _runner(backend, store).map(_poison_worker, tasks, shared=shared)
        assert results[0].attempts == DEFAULT_QUEUE_RETRIES + 1
        assert _log_counts(shared["log"])[str(tasks[0].voltage)] == (
            DEFAULT_QUEUE_RETRIES + 1
        )

    def test_poison_recalled_without_retrying(self, store, tmp_path):
        """A quarantined task is settled: resumes report it, never re-run it."""
        tasks = _grid(4)
        shared = {
            "offset": 0,
            "log": str(tmp_path / "attempts.log"),
            "bad": tasks[1].voltage,
        }
        first = _runner(_queue_backend(store, backoff=0.01), store, retries=1).map(
            _poison_worker, tasks, shared=shared
        )
        counts = _log_counts(shared["log"])
        backend = _queue_backend(store)
        second = _runner(backend, store, retries=1).map(
            _poison_worker, tasks, shared=shared
        )
        assert second == first
        assert backend.last_stats["enqueued"] == 0
        assert backend.last_stats["quarantined"] == 1
        assert _log_counts(shared["log"]) == counts

    def test_suppressed_heartbeat_forces_steal(self, store, tmp_path):
        """A partitioned-but-alive worker loses its lease; the sweep absorbs
        the duplicate execution through idempotent publishes."""
        plan = FaultPlan(
            rules=(
                SuppressHeartbeat(worker=0, after_tasks=0),
                DelayTask(worker=0, seconds=1.0),
            )
        )
        backend = _queue_backend(
            store, lease_seconds=0.2, backoff=0.02, fault_plan=plan
        )
        tasks = _grid(3)
        shared = {"offset": 9, "log": str(tmp_path / "executions.log")}
        results = _runner(backend, store, workers=2).map(
            _logged_worker, tasks, shared=shared
        )
        reference = SweepRunner(workers=1).map(
            _logged_worker,
            tasks,
            shared={"offset": 9, "log": str(tmp_path / "reference.log")},
        )
        assert results == reference
        assert backend.last_stats["worker_deaths"] == 0  # nobody died
        counts = _log_counts(shared["log"])
        assert sorted(counts) == sorted(str(t.voltage) for t in tasks)
        assert max(counts.values()) >= 2  # the stalled task ran twice

    def test_disabled_store_rejected(self, tmp_path):
        backend = QueueBackend(
            store=ArtifactCache(root=tmp_path / "cache", enabled=False)
        )
        with pytest.raises(ValueError, match="REPRO_CACHE_DISABLE"):
            _runner(backend, None).map(_draw_worker, _grid(2), shared={"offset": 0})

    def test_undigestable_shared_needs_label(self, store):
        backend = _queue_backend(store)
        runner = SweepRunner(backend=backend, workers=1, sweep_label="")
        with pytest.raises(ValueError, match="sweep_label"):
            runner.map(_draw_worker, _grid(2), shared={"offset": object()})

    def test_runner_configuration_adopted(self, store):
        backend = QueueBackend()
        runner = SweepRunner(
            backend=backend,
            workers=1,
            shard_store=store,
            sweep_label="adopted",
            retries=5,
            task_timeout=33.0,
            backoff=0.125,
        )
        runner.map(_draw_worker, _grid(2), shared={"offset": 0})
        assert backend.store is store
        assert backend.sweep_label == "adopted"
        assert backend.retries == 5
        assert backend.task_timeout == 33.0
        assert backend.backoff == 0.125
