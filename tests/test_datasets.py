"""Unit tests for the benchmark dataset generators and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    BENCHMARKS,
    black_scholes_price,
    forward_kinematics,
    generate_blackscholes,
    generate_digits,
    generate_faces,
    generate_inversek2j,
    get_benchmark,
    inverse_kinematics,
    list_benchmarks,
    norm_cdf,
)
from repro.nn import Trainer, classification_error


class TestDigits:
    def test_shapes_and_ranges(self):
        ds = generate_digits(num_samples=200, seed=0)
        assert ds.inputs.shape == (200, 100)
        assert ds.targets.shape == (200, 10)
        assert ds.labels.shape == (200,)
        assert np.all(ds.inputs >= 0.0) and np.all(ds.inputs <= 1.0)
        assert ds.name == "mnist"

    def test_reproducible_with_seed(self):
        a = generate_digits(num_samples=50, seed=3)
        b = generate_digits(num_samples=50, seed=3)
        np.testing.assert_array_equal(a.inputs, b.inputs)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = generate_digits(num_samples=50, seed=3)
        b = generate_digits(num_samples=50, seed=4)
        assert not np.array_equal(a.inputs, b.inputs)

    def test_all_classes_present(self):
        ds = generate_digits(num_samples=500, seed=1)
        assert set(np.unique(ds.labels)) == set(range(10))

    def test_one_hot_consistency(self):
        ds = generate_digits(num_samples=100, seed=2)
        np.testing.assert_array_equal(np.argmax(ds.targets, axis=1), ds.labels)

    def test_invalid_sample_count(self):
        with pytest.raises(ValueError):
            generate_digits(num_samples=0)

    def test_learnable_by_paper_topology(self):
        ds = generate_digits(num_samples=1200, seed=5)
        spec = get_benchmark("mnist")
        train, test = spec.split(ds, seed=6)
        net = spec.build_network(seed=7)
        Trainer(net, learning_rate=0.2, epochs=40, seed=8).fit(train)
        error = classification_error(net.predict(test.inputs), test.labels)
        assert error < 0.30  # far better than the 90% error of chance


class TestFaces:
    def test_shapes_and_ranges(self):
        ds = generate_faces(num_samples=100, seed=0)
        assert ds.inputs.shape == (100, 400)
        assert ds.targets.shape == (100, 1)
        assert set(np.unique(ds.labels)).issubset({0, 1})
        assert np.all(ds.inputs >= 0.0) and np.all(ds.inputs <= 1.0)

    def test_class_balance(self):
        ds = generate_faces(num_samples=1000, seed=1)
        face_fraction = np.mean(ds.labels)
        assert 0.4 < face_fraction < 0.6

    def test_face_fraction_parameter(self):
        ds = generate_faces(num_samples=500, seed=2, face_fraction=0.8)
        assert np.mean(ds.labels) > 0.7

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_faces(num_samples=0)
        with pytest.raises(ValueError):
            generate_faces(face_fraction=1.0)

    def test_faces_brighter_in_centre_than_nonfaces_on_average(self):
        ds = generate_faces(num_samples=400, seed=3)
        images = ds.inputs.reshape(-1, 20, 20)
        centre = images[:, 6:14, 6:14].mean(axis=(1, 2))
        assert centre[ds.labels == 1].mean() != pytest.approx(
            centre[ds.labels == 0].mean(), abs=0.01
        )


class TestInverseK2J:
    def test_kinematics_roundtrip(self):
        rng = np.random.default_rng(0)
        theta1 = rng.uniform(0, np.pi / 2, 100)
        theta2 = rng.uniform(0, np.pi / 2, 100)
        x, y = forward_kinematics(theta1, theta2)
        recovered1, recovered2 = inverse_kinematics(x, y)
        fx, fy = forward_kinematics(recovered1, recovered2)
        np.testing.assert_allclose(fx, x, atol=1e-9)
        np.testing.assert_allclose(fy, y, atol=1e-9)

    def test_dataset_shapes_and_normalization(self):
        ds = generate_inversek2j(num_samples=300, seed=0)
        assert ds.inputs.shape == (300, 2)
        assert ds.targets.shape == (300, 2)
        assert np.all(ds.targets >= 0.0) and np.all(ds.targets <= 1.0)
        assert np.all(ds.inputs >= 0.0) and np.all(ds.inputs <= 1.0)

    def test_deterministic(self):
        a = generate_inversek2j(num_samples=50, seed=9)
        b = generate_inversek2j(num_samples=50, seed=9)
        np.testing.assert_array_equal(a.inputs, b.inputs)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            generate_inversek2j(num_samples=-1)


class TestBlackScholes:
    def test_norm_cdf_known_values(self):
        assert float(norm_cdf(np.array([0.0]))[0]) == pytest.approx(0.5)
        assert float(norm_cdf(np.array([1.96]))[0]) == pytest.approx(0.975, abs=1e-3)
        assert float(norm_cdf(np.array([-1.96]))[0]) == pytest.approx(0.025, abs=1e-3)

    def test_call_price_properties(self):
        spot = np.array([100.0])
        strike = np.array([100.0])
        rate = np.array([0.05])
        vol = np.array([0.2])
        t = np.array([1.0])
        call = black_scholes_price(spot, strike, rate, vol, t, np.array([0.0]))
        put = black_scholes_price(spot, strike, rate, vol, t, np.array([1.0]))
        # at-the-money call worth more than put when rates are positive
        assert call[0] > put[0] > 0
        # put-call parity: C - P = S - K e^{-rT}
        parity = spot[0] - strike[0] * np.exp(-rate[0] * t[0])
        assert call[0] - put[0] == pytest.approx(parity, abs=1e-2)

    def test_deep_in_the_money_call(self):
        price = black_scholes_price(
            np.array([150.0]), np.array([100.0]), np.array([0.02]),
            np.array([0.2]), np.array([0.5]), np.array([0.0]),
        )
        intrinsic = 150.0 - 100.0 * np.exp(-0.02 * 0.5)
        assert price[0] >= intrinsic - 1e-6

    def test_dataset_shapes(self):
        ds = generate_blackscholes(num_samples=200, seed=0)
        assert ds.inputs.shape == (200, 6)
        assert ds.targets.shape == (200, 1)
        assert np.all(ds.targets >= 0.0) and np.all(ds.targets <= 1.0)
        assert np.all(ds.inputs >= -1e-9) and np.all(ds.inputs <= 1.0 + 1e-9)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            generate_blackscholes(num_samples=0)


class TestRegistry:
    def test_benchmark_list_matches_paper_table(self):
        assert list_benchmarks() == ["mnist", "facedet", "inversek2j", "bscholes"]

    @pytest.mark.parametrize(
        "name,topology",
        [("mnist", "100-32-10"), ("facedet", "400-8-1"),
         ("inversek2j", "2-16-2"), ("bscholes", "6-16-1")],
    )
    def test_topologies_match_table1(self, name, topology):
        assert get_benchmark(name).topology == topology

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            get_benchmark("imagenet")

    @pytest.mark.parametrize("name", list(BENCHMARKS))
    def test_generate_and_split_consistent_with_topology(self, name):
        spec = get_benchmark(name)
        ds = spec.generate(num_samples=120, seed=0)
        assert ds.num_features == int(spec.topology.split("-")[0])
        assert ds.num_outputs == int(spec.topology.split("-")[-1])
        train, test = spec.split(ds, seed=1)
        assert len(train) + len(test) == 120
        ratio = len(train) / len(test)
        assert ratio == pytest.approx(spec.train_test_ratio, rel=0.35)

    @pytest.mark.parametrize("name", list(BENCHMARKS))
    def test_build_network_matches_topology(self, name):
        spec = get_benchmark(name)
        network = spec.build_network(seed=0)
        widths = tuple(int(w) for w in spec.topology.split("-"))
        assert network.widths == widths

    def test_error_metric_dispatch(self):
        mnist = get_benchmark("mnist")
        ds = mnist.generate(num_samples=50, seed=0)
        predictions = ds.targets  # perfect predictions
        assert mnist.error(predictions, ds) == 0.0
        inversek2j = get_benchmark("inversek2j")
        reg = inversek2j.generate(num_samples=50, seed=0)
        assert inversek2j.error(reg.targets, reg) == 0.0

    def test_classification_error_requires_labels(self):
        spec = get_benchmark("mnist")
        ds = spec.generate(num_samples=20, seed=0)
        stripped = ds.subset(np.arange(20))
        stripped.labels = None
        with pytest.raises(ValueError):
            spec.error(ds.targets, stripped)
