"""Geometry-parametric accelerator tests: placement spill, capacity planning,
geometry-invariant execution, and the scaled energy/characteristics models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import (
    CHIP_CHARACTERISTICS,
    NOMINAL_OPERATING_POINT,
    MicrocodeCompiler,
    Npu,
    OperatingPoint,
    Snnac,
    SnnacConfig,
    SnnacEnergyModel,
    WeightPlacement,
    chip_characteristics,
    plan_capacity,
)
from repro.nn import Network
from repro.quant import WeightQuantizer
from repro.sram import BitFault, FaultMap, WeightMemorySystem

#: (num_pes, words_per_bank) points covering the satellite's grid — at
#: least one forces multi-segment spill for the 20-10-3 test model.
GEOMETRIES = [(2, 128), (4, 64), (8, 32), (16, 16)]


@pytest.fixture()
def network():
    return Network("20-10-3", seed=3)


@pytest.fixture()
def quantizer():
    return WeightQuantizer(total_bits=16, frac_bits=13)


class TestSpillPlacement:
    def test_segments_cover_every_block_word_exactly_once(self):
        placement = WeightPlacement((20, 10, 3), num_pes=8, words_per_bank=32)
        assert placement.spilled_neurons > 0  # the geometry forces spill
        for layer in placement.layers:
            for neuron in layer.neurons:
                covered = sorted(
                    offset
                    for segment in neuron.segments
                    for offset in range(
                        segment.word_offset, segment.word_offset + segment.length
                    )
                )
                assert covered == list(range(neuron.fan_in + 1))

    def test_segments_are_disjoint_within_banks(self):
        placement = WeightPlacement((20, 10, 3), num_pes=8, words_per_bank=32)
        occupied = {pe: set() for pe in range(8)}
        for layer in placement.layers:
            for neuron in layer.neurons:
                for segment in neuron.segments:
                    span = set(range(segment.base_address, segment.end_address))
                    assert segment.end_address <= 32
                    assert not (occupied[segment.pe] & span)
                    occupied[segment.pe] |= span
        for pe, used in occupied.items():
            assert len(used) == placement.words_used_per_pe[pe]

    def test_single_neuron_wider_than_a_bank_spills_across_banks(self):
        # fan_in + 1 = 41 words, banks hold 16: every neuron must span >= 3
        placement = WeightPlacement((40, 2), num_pes=6, words_per_bank=16)
        for neuron in placement.layers[0].neurons:
            assert neuron.spilled
            assert len(neuron.segments) >= 3
            assert {segment.pe for segment in neuron.segments} != {neuron.pe}

    def test_locate_resolves_spilled_words(self):
        placement = WeightPlacement((40, 2), num_pes=6, words_per_bank=16)
        neuron = placement.layers[0].neuron(0)
        for word in range(neuron.fan_in + 1):
            pe, address = neuron.locate(word)
            segment = next(
                s
                for s in neuron.segments
                if s.word_offset <= word < s.word_offset + s.length
            )
            assert pe == segment.pe
            assert segment.base_address <= address < segment.end_address
        with pytest.raises(IndexError):
            neuron.locate(neuron.fan_in + 1)

    def test_total_overflow_still_raises(self):
        with pytest.raises(ValueError, match="does not fit"):
            WeightPlacement((100, 50, 10), num_pes=2, words_per_bank=64)

    def test_store_load_roundtrip_with_spill(self, network, quantizer):
        memory = WeightMemorySystem.build(8, 32, 16, seed=9)
        placement = WeightPlacement(network.widths, 8, 32)
        assert placement.spilled_neurons > 0
        quantized = quantizer.quantize_network(network)
        placement.store(memory, quantized)
        for layer_index in range(len(network.layers)):
            weight_words, bias_words = placement.load_layer_words(
                memory, layer_index, voltage=0.9
            )
            np.testing.assert_array_equal(
                weight_words, quantized.weight_words[layer_index]
            )
            np.testing.assert_array_equal(bias_words, quantized.bias_words[layer_index])

    def test_fault_masks_follow_spilled_words(self):
        placement = WeightPlacement((40, 2), num_pes=6, words_per_bank=16)
        neuron = placement.layers[0].neuron(1)
        # pick a word that lives in a spill segment (not the home bank)
        spill_segment = neuron.segments[-1]
        word_index = spill_segment.word_offset  # block word inside the spill
        assert word_index > 0  # a weight word, not the bias
        pe, address = neuron.locate(word_index)
        fault_maps = [FaultMap(16, 16) for _ in range(6)]
        fault_maps[pe].add(BitFault(address, 5, 1))
        weight_and, weight_or, bias_and, bias_or = placement.layer_fault_masks(
            fault_maps, 0, word_bits=16
        )
        assert weight_or[word_index - 1, 1] == 1 << 5
        assert np.count_nonzero(weight_or) == 1
        assert np.all(weight_and == 0xFFFF)
        assert np.all(bias_and == 0xFFFF) and np.all(bias_or == 0)

    def test_fault_masks_reject_undersized_maps_for_spill_segments(self):
        placement = WeightPlacement((40, 2), num_pes=6, words_per_bank=16)
        small = [FaultMap(4, 16) for _ in range(6)]
        with pytest.raises(IndexError):
            placement.layer_fault_masks(small, 0, 16)


class TestCapacityPlanning:
    def test_plan_matches_allocated_placement(self):
        report = plan_capacity((20, 10, 3), 8, 32)
        placement = WeightPlacement((20, 10, 3), 8, 32)
        assert report.fits
        assert report.words_required == placement.total_words_used == 21 * 10 + 11 * 3
        assert report.words_used_per_pe == tuple(placement.words_used_per_pe)
        assert report.spilled_neurons == placement.spilled_neurons
        assert report.num_segments == placement.num_segments
        assert 0 < report.utilization <= 1

    def test_plan_reports_overflow_without_raising(self):
        report = plan_capacity((100, 50, 10), 2, 64)
        assert not report.fits
        assert report.words_required == 101 * 50 + 51 * 10
        assert report.total_capacity_words == 128
        assert report.utilization > 1
        assert "DOES NOT FIT" in report.to_text()

    def test_fits_iff_total_capacity_suffices(self):
        required = 21 * 10 + 11 * 3  # the 20-10-3 model
        assert plan_capacity((20, 10, 3), 1, required).fits
        assert not plan_capacity((20, 10, 3), 1, required - 1).fits

    def test_compiler_capacity_report(self, network):
        compiler = MicrocodeCompiler(num_pes=4, words_per_bank=16)
        assert not compiler.capacity_report(network).fits
        assert not compiler.capacity_report(network.widths).fits
        assert MicrocodeCompiler(num_pes=8, words_per_bank=512).capacity_report(
            network
        ).fits

    def test_plan_rejects_invalid_geometry(self):
        with pytest.raises(ValueError):
            plan_capacity((4, 2), 0, 16)


class TestGeometryInvariantExecution:
    """The same model must compute bit-identical outputs on every geometry
    that fits it, match the software reference, and keep the stats
    invariants (macs, sram_reads) at every point — spill included."""

    def _deploy(self, network, quantizer, num_pes, words_per_bank, seed=5):
        memory = WeightMemorySystem.build(num_pes, words_per_bank, 16, seed=seed)
        npu = Npu(memory)
        program = npu.deploy(network, quantizer)
        return npu, program

    def test_forward_bit_identical_across_geometries(self, network, quantizer):
        x = np.random.default_rng(1).random((9, 20))
        reference_output = None
        for num_pes, words_per_bank in GEOMETRIES:
            npu, program = self._deploy(network, quantizer, num_pes, words_per_bank)
            hardware, _ = npu.run(x, sram_voltage=0.9)
            software = npu.reference_forward(x)
            np.testing.assert_array_equal(hardware, software)
            if reference_output is None:
                reference_output = hardware
            else:
                np.testing.assert_array_equal(hardware, reference_output)

    def test_stats_invariants_hold_at_every_geometry(self, network, quantizer):
        x = np.random.default_rng(2).random((5, 20))
        expected_macs = 20 * 10 + 10 * 3
        expected_words = 21 * 10 + 11 * 3
        for num_pes, words_per_bank in GEOMETRIES:
            npu, program = self._deploy(network, quantizer, num_pes, words_per_bank)
            _, stats = npu.run(x, sram_voltage=0.9)
            assert program.total_macs_per_inference == expected_macs
            assert stats.macs == expected_macs * 5
            assert stats.sram_reads == expected_words
            assert stats.cycles == program.total_cycles_per_inference

    def test_spill_costs_extra_passes(self, network, quantizer):
        roomy = MicrocodeCompiler(num_pes=8, words_per_bank=512).compile(
            network, quantizer
        )
        tight = MicrocodeCompiler(num_pes=8, words_per_bank=32).compile(
            network, quantizer
        )
        assert tight.placement.spilled_neurons > 0
        assert sum(l.passes for l in tight.layers) > sum(l.passes for l in roomy.layers)
        assert tight.total_cycles_per_inference > roomy.total_cycles_per_inference

    def test_default_geometry_keeps_historical_cycle_formula(self, quantizer):
        network = Network("10-12-3", seed=0)
        program = MicrocodeCompiler(num_pes=4, words_per_bank=64).compile(
            network, quantizer
        )
        layer0, layer1 = program.layers
        assert layer0.cycles == 3 * (10 + 1 + 4)
        assert layer1.cycles == 1 * (12 + 1 + 4)

    def test_refresh_restores_spilled_weights_after_overscaling(
        self, network, quantizer
    ):
        npu, _ = self._deploy(network, quantizer, 8, 32)
        x = np.random.default_rng(3).random((4, 20))
        nominal = npu.predict(x, sram_voltage=0.9)
        npu.predict(x, sram_voltage=0.42)  # corrupts storage
        npu.refresh_weights()
        np.testing.assert_allclose(npu.predict(x, sram_voltage=0.9), nominal)


class TestGeometryScaledEnergy:
    def test_reference_geometry_reproduces_chip_calibration_exactly(self):
        base = SnnacEnergyModel()
        scaled = SnnacEnergyModel.for_geometry()
        for point in (
            NOMINAL_OPERATING_POINT,
            OperatingPoint(0.55, 0.50, 17.8e6),
            OperatingPoint(0.65, 0.65, 250.0e6),
        ):
            expected = base.breakdown(point)
            got = scaled.breakdown(point)
            assert got.logic_dynamic == expected.logic_dynamic
            assert got.logic_leakage == expected.logic_leakage
            assert got.sram_dynamic == expected.sram_dynamic
            assert got.sram_leakage == expected.sram_leakage

    def test_logic_energy_scales_with_pe_count(self):
        base = SnnacEnergyModel().breakdown(NOMINAL_OPERATING_POINT)
        double = SnnacEnergyModel.for_geometry(num_pes=16).breakdown(
            NOMINAL_OPERATING_POINT
        )
        assert double.logic_dynamic == pytest.approx(2 * base.logic_dynamic)
        assert double.logic_leakage == pytest.approx(2 * base.logic_leakage)
        # 16 PEs also double the number of weight banks
        assert double.sram_dynamic == pytest.approx(2 * base.sram_dynamic)

    def test_sram_energy_scales_with_bit_count(self):
        base = SnnacEnergyModel().breakdown(NOMINAL_OPERATING_POINT)
        half = SnnacEnergyModel.for_geometry(words_per_bank=256).breakdown(
            NOMINAL_OPERATING_POINT
        )
        assert half.sram_dynamic == pytest.approx(0.5 * base.sram_dynamic)
        assert half.sram_leakage == pytest.approx(0.5 * base.sram_leakage)
        assert half.logic_dynamic == base.logic_dynamic

    def test_timing_models_are_geometry_independent(self):
        base = SnnacEnergyModel()
        scaled = SnnacEnergyModel.for_geometry(num_pes=16, words_per_bank=128)
        assert scaled.logic_frequency.fmax(0.7) == base.logic_frequency.fmax(0.7)
        assert scaled.sram_frequency.fmax(0.7) == base.sram_frequency.fmax(0.7)

    def test_rejects_non_positive_geometry(self):
        with pytest.raises(ValueError):
            SnnacEnergyModel.for_geometry(num_pes=0)

    def test_snnac_auto_scales_its_energy_model(self):
        default_chip = Snnac(SnnacConfig(seed=0))
        big_chip = Snnac(SnnacConfig(num_pes=16, seed=0))
        nominal = NOMINAL_OPERATING_POINT
        assert big_chip.energy_model.breakdown(nominal).logic_dynamic == pytest.approx(
            2 * default_chip.energy_model.breakdown(nominal).logic_dynamic
        )


class TestChipCharacteristics:
    def test_default_matches_fabricated_chip(self):
        assert CHIP_CHARACTERISTICS["num_pes"] == 8
        assert CHIP_CHARACTERISTICS["sram_kb"] == pytest.approx(9.0)
        assert CHIP_CHARACTERISTICS["core_area_mm2"] == pytest.approx(1.15 * 1.2)
        assert CHIP_CHARACTERISTICS["nominal_power_w"] == pytest.approx(16.8e-3)
        assert CHIP_CHARACTERISTICS["nominal_energy_per_cycle_pj"] == pytest.approx(67.1)

    def test_characteristics_derive_from_config(self):
        characteristics = chip_characteristics(SnnacConfig(num_pes=16))
        assert characteristics["num_pes"] == 16
        assert characteristics["sram_kb"] == pytest.approx(17.0)
        assert characteristics["nominal_power_w"] > CHIP_CHARACTERISTICS["nominal_power_w"]

    def test_chip_reports_its_own_geometry(self):
        chip = Snnac(SnnacConfig(num_pes=4, words_per_bank=256, seed=2))
        characteristics = chip.characteristics()
        assert characteristics["num_pes"] == 4
        assert characteristics["words_per_bank"] == 256
        assert characteristics["sram_kb"] == pytest.approx(4 * 256 * 16 / 8192 + 1)
