"""Unit and property-based tests for repro.sram.array (SramBank and
WeightMemorySystem): the read-disturb failure mechanism MATIC depends on."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sram import GaussianVminModel, SramBank, WeightMemorySystem


@pytest.fixture()
def bank():
    return SramBank(64, 16, seed=7, name="test-bank")


class TestBasicAccess:
    def test_geometry(self, bank):
        assert bank.size_bits == 64 * 16
        assert bank.size_bytes == 128
        assert bank.word_mask == 0xFFFF

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SramBank(0, 16)
        with pytest.raises(ValueError):
            SramBank(8, 70)

    def test_write_read_at_nominal_voltage(self, bank):
        words = np.arange(64, dtype=np.uint64)
        bank.write_all(words)
        np.testing.assert_array_equal(bank.read_all(voltage=0.9), words)

    def test_single_address_access(self, bank):
        bank.write(5, 0xBEEF)
        assert bank.read(5, voltage=0.9)[0] == 0xBEEF

    def test_write_masks_to_word_length(self, bank):
        bank.write(0, 0x1FFFF)
        assert bank.read(0, voltage=0.9)[0] == 0xFFFF

    def test_address_out_of_range(self, bank):
        with pytest.raises(IndexError):
            bank.read(64)
        with pytest.raises(IndexError):
            bank.write(-1, 0)

    def test_word_count_mismatch(self, bank):
        with pytest.raises(ValueError):
            bank.write(np.array([0, 1]), np.array([1, 2, 3]))
        with pytest.raises(ValueError):
            bank.write_all(np.zeros(10, dtype=np.uint64))

    def test_invalid_voltage(self, bank):
        with pytest.raises(ValueError):
            bank.read(0, voltage=0.0)

    def test_counters(self, bank):
        bank.write_all(np.zeros(64, dtype=np.uint64))
        bank.read_all()
        assert bank.write_count == 64
        assert bank.read_count == 64

    def test_stored_words_is_non_destructive(self, bank):
        bank.write_all(np.arange(64, dtype=np.uint64))
        before_reads = bank.read_count
        bank.stored_words()
        assert bank.read_count == before_reads


class TestReadDisturbBehaviour:
    def test_no_errors_at_nominal(self, bank):
        reference = np.full(64, 0xA5A5, dtype=np.uint64)
        bank.write_all(reference)
        bank.read_all(voltage=0.9)
        assert bank.bit_error_count(reference) == 0

    def test_errors_appear_at_low_voltage(self, bank):
        reference = np.full(64, 0xA5A5, dtype=np.uint64)
        bank.write_all(reference)
        bank.read_all(voltage=0.45)
        assert bank.bit_error_count(reference) > 0

    def test_corruption_matches_fault_map(self, bank):
        """Reads at voltage V corrupt exactly the cells the fault map predicts."""
        reference = np.arange(64, dtype=np.uint64) * 321 % 65536
        bank.write_all(reference)
        fault_map = bank.fault_map_at(0.46)
        observed = bank.read_all(voltage=0.46)
        np.testing.assert_array_equal(observed, fault_map.apply(reference))

    def test_corruption_is_stable_across_repeated_reads(self, bank):
        reference = np.full(64, 0x0F0F, dtype=np.uint64)
        bank.write_all(reference)
        first = bank.read_all(voltage=0.45)
        second = bank.read_all(voltage=0.45)
        third = bank.read_all(voltage=0.9)  # corruption persists even at nominal
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(first, third)

    def test_write_refreshes_disturbed_cells(self, bank):
        reference = np.full(64, 0x3333, dtype=np.uint64)
        bank.write_all(reference)
        bank.read_all(voltage=0.42)
        bank.write_all(reference)
        np.testing.assert_array_equal(bank.read_all(voltage=0.9), reference)

    def test_lower_voltage_corrupts_more_cells(self, bank):
        reference = np.full(64, 0xFFFF, dtype=np.uint64)
        errors = []
        for voltage in (0.52, 0.48, 0.44):
            bank.write_all(reference)
            bank.read_all(voltage=voltage)
            errors.append(bank.bit_error_count(reference))
        assert errors[0] <= errors[1] <= errors[2]

    def test_temperature_shifts_failure_boundary(self, bank):
        reference = np.full(64, 0x5A5A, dtype=np.uint64)
        bank.write_all(reference)
        bank.read_all(voltage=0.47, temperature=-15.0)
        cold_errors = bank.bit_error_count(reference)
        bank.write_all(reference)
        bank.read_all(voltage=0.47, temperature=90.0)
        hot_errors = bank.bit_error_count(reference)
        assert cold_errors >= hot_errors

    def test_fault_map_polarity_is_preferred_state(self, bank):
        fault_map = bank.fault_map_at(0.46)
        for fault in fault_map.faults[:20]:
            assert fault.stuck_value == bank.cells.preferred_state[fault.address, fault.bit]

    def test_marginal_cells_are_sorted_and_safe(self, bank):
        marginal = bank.marginal_cells(0.50, count=8)
        assert len(marginal) == 8
        vmins = [bank.cells.vmin_read[f.address, f.bit] for f in marginal]
        assert all(v <= 0.50 for v in vmins)
        assert vmins == sorted(vmins, reverse=True)

    def test_marginal_cells_count_validation(self, bank):
        with pytest.raises(ValueError):
            bank.marginal_cells(0.5, count=0)

    @settings(max_examples=25, deadline=None)
    @given(
        voltage=st.floats(0.40, 0.60),
        pattern=st.integers(0, 2**16 - 1),
        seed=st.integers(0, 100),
    )
    def test_read_disturb_idempotence_property(self, voltage, pattern, seed):
        """Once disturbed, repeated reads at the same or higher voltage return
        the same data (the stability property MAT relies on)."""
        bank = SramBank(16, 16, seed=seed)
        bank.write_all(np.full(16, pattern, dtype=np.uint64))
        first = bank.read_all(voltage=voltage)
        second = bank.read_all(voltage=voltage)
        higher = bank.read_all(voltage=voltage + 0.2)
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(first, higher)


class TestRailBoundary:
    """A cell whose V_min,read equals the rail exactly must be safe in every
    path: read, fault_map_at, and marginal_cells must agree on it."""

    VOLTAGE = 0.5

    @pytest.fixture()
    def boundary_bank(self):
        bank = SramBank(16, 8, seed=3)
        # pin one cell exactly at the rail, its neighbours clearly around it
        bank.cells.vmin_read[:] = 0.30
        bank.cells.vmin_read[4, 2] = self.VOLTAGE
        bank.cells.vmin_read[4, 3] = self.VOLTAGE + 0.01
        bank.cells.preferred_state[:] = 1
        return bank

    def test_read_at_rail_is_safe(self, boundary_bank):
        boundary_bank.write_all(np.zeros(16, dtype=np.uint64))
        words = boundary_bank.read_all(voltage=self.VOLTAGE)
        # bit (4, 2) at the rail survives; bit (4, 3) above it flips to 1
        assert (int(words[4]) >> 2) & 1 == 0
        assert (int(words[4]) >> 3) & 1 == 1

    def test_fault_map_excludes_rail_cell(self, boundary_bank):
        fault_map = boundary_bank.fault_map_at(self.VOLTAGE)
        positions = {(f.address, f.bit) for f in fault_map.faults}
        assert (4, 2) not in positions
        assert (4, 3) in positions

    def test_marginal_cells_include_rail_cell_first(self, boundary_bank):
        marginal = boundary_bank.marginal_cells(self.VOLTAGE, count=3)
        assert (marginal[0].address, marginal[0].bit) == (4, 2)

    def test_all_paths_agree(self, boundary_bank):
        """The rail cell is safe everywhere, never disturbed in one path and
        safe in another."""
        fault_positions = {
            (f.address, f.bit) for f in boundary_bank.fault_map_at(self.VOLTAGE).faults
        }
        boundary_bank.write_all(np.zeros(16, dtype=np.uint64))
        boundary_bank.read_all(voltage=self.VOLTAGE)
        disturbed = {
            (int(a), int(b)) for a, b in zip(*np.nonzero(boundary_bank.data_bits))
        }
        assert disturbed == fault_positions
        marginal_positions = {
            (f.address, f.bit)
            for f in boundary_bank.marginal_cells(self.VOLTAGE, count=16 * 8)
        }
        assert not (marginal_positions & fault_positions)
        assert (4, 2) in marginal_positions


class TestMarginalCellTieBreak:
    def test_ties_resolved_by_address_then_bit(self):
        bank = SramBank(8, 4, seed=0)
        bank.cells.vmin_read[:] = 0.48  # every cell tied at the same margin
        marginal = bank.marginal_cells(0.50, count=6)
        positions = [(f.address, f.bit) for f in marginal]
        assert positions == [(0, 0), (0, 1), (0, 2), (0, 3), (1, 0), (1, 1)]

    def test_selection_is_reproducible(self):
        bank_a = SramBank(32, 8, seed=11)
        bank_b = SramBank(32, 8, seed=11)
        sel_a = [(f.address, f.bit) for f in bank_a.marginal_cells(0.5, count=8)]
        sel_b = [(f.address, f.bit) for f in bank_b.marginal_cells(0.5, count=8)]
        assert sel_a == sel_b


class TestWeightMemorySystem:
    def test_build(self):
        memory = WeightMemorySystem.build(8, 128, 16, seed=0)
        assert len(memory) == 8
        assert memory.total_words == 8 * 128
        assert memory.total_bits == 8 * 128 * 16
        assert memory.word_bits == 16
        assert memory[0].name == "pe0.weights"

    def test_banks_have_independent_variation(self):
        memory = WeightMemorySystem.build(2, 64, 16, seed=0)
        assert not np.allclose(memory[0].cells.vmin_read, memory[1].cells.vmin_read)

    def test_same_seed_reproducible(self):
        a = WeightMemorySystem.build(2, 32, 16, seed=5)
        b = WeightMemorySystem.build(2, 32, 16, seed=5)
        np.testing.assert_allclose(a[0].cells.vmin_read, b[0].cells.vmin_read)

    def test_mixed_word_lengths_rejected(self):
        banks = [SramBank(8, 16, seed=0), SramBank(8, 8, seed=1)]
        with pytest.raises(ValueError):
            WeightMemorySystem(banks)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WeightMemorySystem([])

    def test_fault_rate_at_decreases_with_voltage(self):
        memory = WeightMemorySystem.build(4, 128, 16, seed=3)
        assert memory.fault_rate_at(0.44) > memory.fault_rate_at(0.50) > memory.fault_rate_at(0.60)

    def test_fault_maps_cover_all_banks(self):
        memory = WeightMemorySystem.build(3, 64, 16, seed=3)
        maps = memory.fault_maps_at(0.46)
        assert len(maps) == 3
        assert all(m.num_words == 64 for m in maps)

    def test_custom_variation_model(self):
        model = GaussianVminModel(mean=0.3, sigma=0.01)
        memory = WeightMemorySystem.build(2, 32, 16, variation_model=model, seed=0)
        # with Vmin centred at 0.3 V, 0.5 V operation is essentially fault-free
        assert memory.fault_rate_at(0.5) < 0.001
