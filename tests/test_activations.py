"""Unit tests for repro.nn.activations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
    get_activation,
)

ALL_ACTIVATIONS = [Identity(), Sigmoid(), Tanh(), ReLU(), LeakyReLU(), Softmax()]


class TestForwardValues:
    def test_identity_passthrough(self):
        x = np.array([-2.0, 0.0, 3.5])
        np.testing.assert_allclose(Identity().forward(x), x)

    def test_sigmoid_known_values(self):
        s = Sigmoid()
        np.testing.assert_allclose(s.forward(np.array([0.0])), [0.5])
        np.testing.assert_allclose(
            s.forward(np.array([1.0])), [1.0 / (1.0 + np.exp(-1.0))]
        )

    def test_sigmoid_extreme_inputs_are_stable(self):
        s = Sigmoid()
        out = s.forward(np.array([-1e4, 1e4]))
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)

    def test_tanh_matches_numpy(self):
        x = np.linspace(-3, 3, 13)
        np.testing.assert_allclose(Tanh().forward(x), np.tanh(x))

    def test_relu_clamps_negatives(self):
        out = ReLU().forward(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out, [0.0, 0.0, 2.0])

    def test_leaky_relu_negative_slope(self):
        out = LeakyReLU(0.1).forward(np.array([-2.0, 3.0]))
        np.testing.assert_allclose(out, [-0.2, 3.0])

    def test_leaky_relu_rejects_negative_slope_param(self):
        with pytest.raises(ValueError):
            LeakyReLU(-0.5)

    def test_softmax_rows_sum_to_one(self):
        out = Softmax().forward(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(out.sum(axis=1), [1.0, 1.0])

    def test_softmax_shift_invariance(self):
        x = np.array([[1.0, 2.0, 3.0]])
        a = Softmax().forward(x)
        b = Softmax().forward(x + 100.0)
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_softmax_large_logits_stable(self):
        out = Softmax().forward(np.array([[1000.0, 0.0]]))
        assert np.all(np.isfinite(out))


class TestBackward:
    @pytest.mark.parametrize(
        "activation", [Sigmoid(), Tanh(), ReLU(), LeakyReLU(0.05), Identity()]
    )
    def test_gradient_matches_finite_difference(self, activation):
        x = np.linspace(-2.0, 2.0, 41) + 0.013  # avoid the ReLU kink exactly
        y = activation.forward(x)
        analytic = activation.backward(x, y)
        eps = 1e-6
        numeric = (activation.forward(x + eps) - activation.forward(x - eps)) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_sigmoid_gradient_peak_at_zero(self):
        s = Sigmoid()
        x = np.array([0.0])
        assert s.backward(x, s.forward(x))[0] == pytest.approx(0.25)

    def test_relu_gradient_is_binary(self):
        r = ReLU()
        x = np.array([-1.0, 2.0])
        np.testing.assert_allclose(r.backward(x, r.forward(x)), [0.0, 1.0])


class TestRegistry:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("identity", Identity),
            ("sigmoid", Sigmoid),
            ("tanh", Tanh),
            ("relu", ReLU),
            ("leaky_relu", LeakyReLU),
            ("softmax", Softmax),
        ],
    )
    def test_lookup_by_name(self, name, cls):
        assert isinstance(get_activation(name), cls)

    def test_lookup_is_case_insensitive(self):
        assert isinstance(get_activation("SiGmOiD"), Sigmoid)

    def test_instance_passthrough(self):
        instance = Sigmoid()
        assert get_activation(instance) is instance

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown activation"):
            get_activation("does-not-exist")


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(-50, 50), min_size=1, max_size=32))
    def test_sigmoid_output_in_unit_interval(self, values):
        out = Sigmoid().forward(np.array(values))
        assert np.all(out >= 0.0) and np.all(out <= 1.0)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(-50, 50), min_size=1, max_size=32))
    def test_tanh_output_bounded(self, values):
        out = Tanh().forward(np.array(values))
        assert np.all(np.abs(out) <= 1.0)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(-50, 50), min_size=1, max_size=32))
    def test_relu_non_negative_and_idempotent(self, values):
        r = ReLU()
        out = r.forward(np.array(values))
        assert np.all(out >= 0.0)
        np.testing.assert_allclose(r.forward(out), out)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.lists(st.floats(-30, 30), min_size=2, max_size=8),
            min_size=1,
            max_size=8,
        ).filter(lambda rows: len({len(r) for r in rows}) == 1)
    )
    def test_softmax_is_a_probability_distribution(self, rows):
        out = Softmax().forward(np.array(rows))
        assert np.all(out >= 0.0)
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(len(rows)), atol=1e-9)
