"""Unit tests for repro.quant.quantizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Network
from repro.quant import FixedPointFormat, WeightQuantizer


@pytest.fixture()
def network():
    return Network("6-5-3", seed=0)


class TestFormatSelection:
    def test_fixed_frac_bits(self, network):
        quantizer = WeightQuantizer(total_bits=16, frac_bits=10)
        for fmt in quantizer.layer_formats(network):
            assert fmt.weight_format.frac_bits == 10
            assert fmt.bias_format.frac_bits == 10

    def test_range_fitted_formats_cover_weights(self, network):
        network.layers[0].weights[0, 0] = 5.7
        quantizer = WeightQuantizer(total_bits=16)
        formats = quantizer.layer_formats(network)
        assert formats[0].weight_format.max_value >= 5.7

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WeightQuantizer(total_bits=1)
        with pytest.raises(ValueError):
            WeightQuantizer(total_bits=16, frac_bits=16)

    def test_format_for_empty_and_tiny_values(self):
        quantizer = WeightQuantizer(total_bits=16)
        fmt = quantizer.format_for(np.array([1e-9, -1e-9]))
        assert isinstance(fmt, FixedPointFormat)
        assert fmt.max_value >= 1e-6


class TestQuantizeNetwork:
    def test_word_shapes_match_layers(self, network):
        quantizer = WeightQuantizer(total_bits=16, frac_bits=12)
        quantized = quantizer.quantize_network(network)
        assert len(quantized.weight_words) == len(network.layers)
        for layer, words, bias_words in zip(
            network.layers, quantized.weight_words, quantized.bias_words
        ):
            assert words.shape == layer.weights.shape
            assert bias_words.shape == layer.bias.shape
            assert words.dtype == np.uint64

    def test_roundtrip_error_bounded_by_lsb(self, network):
        quantizer = WeightQuantizer(total_bits=16, frac_bits=12)
        quantized = quantizer.quantize_network(network)
        for (weights, bias), layer, fmt in zip(
            quantized.to_float(), network.layers, quantized.layer_formats
        ):
            assert np.max(np.abs(weights - layer.weights)) <= fmt.weight_format.scale
            assert np.max(np.abs(bias - layer.bias)) <= fmt.bias_format.scale

    def test_layer_format_count_validation(self, network):
        quantizer = WeightQuantizer(total_bits=16, frac_bits=12)
        formats = quantizer.layer_formats(network)
        with pytest.raises(ValueError):
            quantizer.quantize_network(network, formats[:1])

    def test_apply_to_network_sets_effective(self, network):
        quantizer = WeightQuantizer(total_bits=8, frac_bits=4)
        quantizer.apply_to_network(network)
        for layer in network.layers:
            assert layer.effective_weights is not None
            # effective weights lie on the quantization grid
            codes = layer.effective_weights / (2.0**-4)
            np.testing.assert_allclose(codes, np.round(codes), atol=1e-9)
        network.clear_effective()

    def test_apply_changes_predictions_only_slightly(self, network):
        x = np.random.default_rng(0).normal(size=(10, 6))
        before = network.predict(x)
        WeightQuantizer(total_bits=16, frac_bits=12).apply_to_network(network)
        after = network.predict(x)
        assert np.max(np.abs(before - after)) < 0.01
        network.clear_effective()

    def test_coarse_quantization_changes_predictions_more(self, network):
        x = np.random.default_rng(0).normal(size=(10, 6))
        before = network.predict(x)
        WeightQuantizer(total_bits=6, frac_bits=2).apply_to_network(network)
        coarse = network.predict(x)
        network.clear_effective()
        WeightQuantizer(total_bits=16, frac_bits=12).apply_to_network(network)
        fine = network.predict(x)
        network.clear_effective()
        assert np.max(np.abs(before - coarse)) >= np.max(np.abs(before - fine))

    def test_snr_improves_with_word_length(self, network):
        snr_8 = WeightQuantizer(total_bits=8).quantization_snr_db(network)
        snr_16 = WeightQuantizer(total_bits=16).quantization_snr_db(network)
        assert snr_16 > snr_8 > 0
