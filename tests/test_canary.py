"""Unit tests for in-situ canary selection and the runtime voltage controller."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import Snnac, SnnacConfig
from repro.matic import CanaryBit, CanaryController, CanarySelector
from repro.nn import Network
from repro.quant import WeightQuantizer
from repro.sram import EnvironmentalConditions


@pytest.fixture()
def deployed_chip():
    chip = Snnac(SnnacConfig(num_pes=4, words_per_bank=64, seed=31))
    network = Network("10-8-2", seed=1)
    program = chip.deploy(network, WeightQuantizer(16, 13))
    return chip, program


class TestCanaryBit:
    def test_validation(self):
        with pytest.raises(ValueError):
            CanaryBit(0, 0, 0, expected_value=2)


class TestCanarySelector:
    def test_selects_requested_count_per_bank(self, deployed_chip):
        chip, program = deployed_chip
        selector = CanarySelector(canaries_per_bank=4, strategy="oracle")
        canaries = selector.select(
            chip.memory, 0.50, used_words_per_bank=program.placement.words_used_per_pe
        )
        assert len(canaries) == 4 * len(chip.memory)
        per_bank = {}
        for canary in canaries:
            per_bank.setdefault(canary.bank, []).append(canary)
        assert all(len(v) == 4 for v in per_bank.values())

    def test_canaries_restricted_to_used_words(self, deployed_chip):
        chip, program = deployed_chip
        selector = CanarySelector(canaries_per_bank=4, strategy="oracle")
        canaries = selector.select(
            chip.memory, 0.50, used_words_per_bank=program.placement.words_used_per_pe
        )
        for canary in canaries:
            assert canary.address < program.placement.words_used_per_pe[canary.bank]

    def test_oracle_canaries_are_most_marginal_working_cells(self, deployed_chip):
        chip, _ = deployed_chip
        selector = CanarySelector(canaries_per_bank=3, strategy="oracle")
        canaries = selector.select(chip.memory, 0.50)
        for canary in canaries:
            vmin = chip.memory[canary.bank].cells.vmin_read[canary.address, canary.bit]
            assert vmin <= 0.50  # still working at the target voltage

    def test_profiled_selection_close_to_oracle(self, deployed_chip):
        """Profiled search finds cells whose V_min,read sits just below the
        target voltage (within the search resolution)."""
        chip, program = deployed_chip
        selector = CanarySelector(
            canaries_per_bank=3, strategy="profiled", search_step=0.005, search_depth=20
        )
        canaries = selector.select(
            chip.memory, 0.50, used_words_per_bank=program.placement.words_used_per_pe
        )
        assert canaries, "profiled selection found no canaries"
        for canary in canaries:
            vmin = chip.memory[canary.bank].cells.vmin_read[canary.address, canary.bit]
            assert 0.50 - 0.005 * 21 <= vmin <= 0.50

    def test_expected_values_match_deployed_words(self, deployed_chip):
        chip, program = deployed_chip
        selector = CanarySelector(canaries_per_bank=2, strategy="oracle")
        canaries = selector.select(
            chip.memory, 0.50, used_words_per_bank=program.placement.words_used_per_pe
        )
        for canary in canaries:
            word = int(chip.memory[canary.bank].stored_words()[canary.address])
            assert ((word >> canary.bit) & 1) == canary.expected_value

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CanarySelector(canaries_per_bank=0)
        with pytest.raises(ValueError):
            CanarySelector(strategy="random")
        with pytest.raises(ValueError):
            CanarySelector(search_step=0.0)

    def test_used_words_length_check(self, deployed_chip):
        chip, _ = deployed_chip
        with pytest.raises(ValueError):
            CanarySelector(strategy="oracle").select(chip.memory, 0.5, used_words_per_bank=[1])


class TestCanaryController:
    def _controller(self, chip, program, **kwargs):
        selector = CanarySelector(canaries_per_bank=4, strategy="oracle")
        canaries = selector.select(
            chip.memory, 0.50, used_words_per_bank=program.placement.words_used_per_pe
        )
        return CanaryController(chip, canaries, **kwargs)

    def test_requires_canaries(self, deployed_chip):
        chip, _ = deployed_chip
        with pytest.raises(ValueError):
            CanaryController(chip, [])

    def test_check_states_clean_at_high_voltage(self, deployed_chip):
        chip, program = deployed_chip
        controller = self._controller(chip, program)
        chip.sram_regulator.set_voltage(0.9)
        assert controller.check_states() is False

    def test_check_states_detects_failures_at_low_voltage(self, deployed_chip):
        chip, program = deployed_chip
        controller = self._controller(chip, program)
        chip.sram_regulator.set_voltage(0.42)
        assert controller.check_states() is True
        controller.restore_states()

    def test_regulate_converges_to_canary_boundary(self, deployed_chip):
        chip, program = deployed_chip
        controller = self._controller(chip, program, voltage_step=0.005)
        trace = controller.regulate(safe_voltage=0.60)
        # the boundary is the most marginal working cell at the 0.50 V target,
        # so the final voltage lands just above it (plus the one-step margin)
        assert 0.48 <= trace.final_voltage <= 0.56
        assert trace.canary_failure_voltage is not None
        assert trace.final_voltage > trace.canary_failure_voltage
        assert chip.sram_regulator.voltage == pytest.approx(trace.final_voltage)

    def test_regulate_restores_weight_state(self, deployed_chip):
        chip, program = deployed_chip
        x = np.random.default_rng(0).random((6, 10))
        chip.sram_regulator.set_voltage(0.9)
        reference = chip.predict(x)
        controller = self._controller(chip, program, voltage_step=0.01)
        controller.regulate(safe_voltage=0.60)
        chip.sram_regulator.set_voltage(0.9)
        chip.refresh_weights()
        np.testing.assert_allclose(chip.predict(x), reference)

    def test_regulate_respects_minimum_voltage(self, deployed_chip):
        chip, program = deployed_chip
        controller = self._controller(chip, program, minimum_voltage=0.55)
        trace = controller.regulate(safe_voltage=0.60)
        assert trace.final_voltage >= 0.55
        assert trace.canary_failure_voltage is None

    def test_regulation_tracks_temperature(self, deployed_chip):
        chip, program = deployed_chip
        controller = self._controller(chip, program, voltage_step=0.005)
        chip.set_environment(EnvironmentalConditions(temperature=-15.0))
        cold = controller.regulate(safe_voltage=0.60).final_voltage
        chip.set_environment(EnvironmentalConditions(temperature=90.0))
        hot = controller.regulate(safe_voltage=0.60).final_voltage
        assert cold >= hot
        chip.set_environment(EnvironmentalConditions())

    def test_traces_accumulate(self, deployed_chip):
        chip, program = deployed_chip
        controller = self._controller(chip, program)
        controller.regulate(safe_voltage=0.60)
        controller.regulate(safe_voltage=0.60)
        assert len(controller.traces) == 2
        assert chip.mcu.control_routine_runs == 2

    def test_invalid_parameters(self, deployed_chip):
        chip, program = deployed_chip
        selector = CanarySelector(canaries_per_bank=1, strategy="oracle")
        canaries = selector.select(chip.memory, 0.5)
        with pytest.raises(ValueError):
            CanaryController(chip, canaries, voltage_step=0.0)


class TestStratifiedPlacement:
    """Spatially stratified canary placement under correlated variation."""

    @staticmethod
    def _strata(canaries, chip, num_regions=4, group_size=4):
        strata = set()
        for canary in canaries:
            span = chip.memory[canary.bank].num_words
            regions = max(min(num_regions, span), 1)
            region = min(canary.address * regions // span, regions - 1)
            strata.add((canary.bank, region, canary.bit // group_size))
        return strata

    def _select(self, chip, placement):
        selector = CanarySelector(
            canaries_per_bank=8, strategy="oracle", placement=placement
        )
        return selector.select(chip.memory, 0.50)

    def test_invalid_placement_rejected(self):
        with pytest.raises(ValueError):
            CanarySelector(placement="random")
        with pytest.raises(ValueError):
            CanarySelector(num_regions=0)
        with pytest.raises(ValueError):
            CanarySelector(column_group_size=0)

    def test_default_placement_is_margin(self, deployed_chip):
        chip, _ = deployed_chip
        implicit = CanarySelector(canaries_per_bank=4, strategy="oracle")
        explicit = CanarySelector(
            canaries_per_bank=4, strategy="oracle", placement="margin"
        )
        assert implicit.select(chip.memory, 0.50) == explicit.select(chip.memory, 0.50)

    def test_stratified_covers_at_least_as_many_strata(self, deployed_chip):
        chip, _ = deployed_chip
        margin = self._strata(self._select(chip, "margin"), chip)
        stratified = self._strata(self._select(chip, "stratified"), chip)
        assert len(stratified) >= len(margin)

    def test_stratified_spreads_under_regional_weakness(self):
        """With one artificially weak die region, pure-margin ordering piles
        every canary into that region; stratified placement still covers the
        other regions."""
        from repro.sram.variation import CorrelationSpec, VariationScenario

        scenario = VariationScenario(
            name="region-heavy", correlation=CorrelationSpec(region=0.5)
        )
        chip = Snnac(
            SnnacConfig(num_pes=2, words_per_bank=64, seed=31), scenario=scenario
        )
        # make the first die region (addresses 0..15) uniformly the most
        # marginal cells of the bank by a wide gap
        for bank in chip.memory:
            bank.cells.vmin_read[:, :] = 0.30
            bank.cells.vmin_read[:16, :] = 0.499
        margin = self._select(chip, "margin")
        stratified = self._select(chip, "stratified")
        margin_regions = {r for _, r, _ in self._strata(margin, chip)}
        stratified_regions = {r for _, r, _ in self._strata(stratified, chip)}
        assert margin_regions == {0}
        assert len(stratified_regions) > 1

    def test_stratified_picks_are_still_marginal_cells(self, deployed_chip):
        chip, _ = deployed_chip
        for canary in self._select(chip, "stratified"):
            vmin = chip.memory[canary.bank].cells.vmin_read[canary.address, canary.bit]
            assert vmin <= 0.50

    def test_stratified_respects_count_and_used_words(self, deployed_chip):
        chip, program = deployed_chip
        selector = CanarySelector(
            canaries_per_bank=4, strategy="oracle", placement="stratified"
        )
        canaries = selector.select(
            chip.memory, 0.50, used_words_per_bank=program.placement.words_used_per_pe
        )
        per_bank = {}
        for canary in canaries:
            per_bank.setdefault(canary.bank, []).append(canary)
            assert canary.address < program.placement.words_used_per_pe[canary.bank]
        assert all(len(v) <= 4 for v in per_bank.values())

    def test_stratified_profiled_strategy_also_spreads(self, deployed_chip):
        chip, program = deployed_chip
        selector = CanarySelector(
            canaries_per_bank=6, strategy="profiled", placement="stratified"
        )
        canaries = selector.select(
            chip.memory, 0.50, used_words_per_bank=program.placement.words_used_per_pe
        )
        assert canaries
        for canary in canaries:
            vmin = chip.memory[canary.bank].cells.vmin_read[canary.address, canary.bit]
            assert 0.50 - 0.005 * 21 <= vmin <= 0.50
