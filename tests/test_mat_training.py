"""Unit and behavioural tests for memory-adaptive training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matic import FaultMaskSet, MemoryAdaptiveTrainer
from repro.nn import Dataset, Network, Trainer, classification_error, one_hot
from repro.quant import WeightQuantizer


@pytest.fixture()
def quantizer():
    return WeightQuantizer(total_bits=16, frac_bits=13)


class TestUpdateRule:
    def test_unfaulted_training_matches_plain_quantized_training_closely(
        self, toy_dataset, quantizer
    ):
        """With identity masks the MAT update reduces to standard training on
        quantized forward passes; the result must be as accurate as the float
        baseline."""
        network = Network("8-12-2", loss="binary_cross_entropy", seed=2)
        masks = FaultMaskSet.identity(network, quantizer)
        MemoryAdaptiveTrainer(
            network, masks, learning_rate=0.3, epochs=30, lr_decay=1.0, seed=3
        ).fit(toy_dataset)
        error = classification_error(network.predict(toy_dataset.inputs), toy_dataset.labels)
        assert error < 0.08

    def test_masters_stay_within_format_range(self, toy_dataset, quantizer):
        network = Network("8-8-2", loss="binary_cross_entropy", seed=2)
        masks = FaultMaskSet.random(network, quantizer, 0.2, rng=4)
        trainer = MemoryAdaptiveTrainer(network, masks, learning_rate=0.3, epochs=10, seed=3)
        trainer.fit(toy_dataset)
        for layer, fmt in zip(network.layers, masks.layer_formats):
            assert np.all(layer.weights <= fmt.weight_format.max_value + 1e-9)
            assert np.all(layer.weights >= fmt.weight_format.min_value - 1e-9)

    def test_effective_view_installed_after_fit(self, toy_dataset, quantizer):
        network = Network("8-8-2", loss="binary_cross_entropy", seed=2)
        masks = FaultMaskSet.random(network, quantizer, 0.05, rng=4)
        MemoryAdaptiveTrainer(network, masks, epochs=2, seed=3).fit(toy_dataset)
        for layer in network.layers:
            assert layer.effective_weights is not None

    def test_stuck_bits_survive_training(self, toy_dataset, quantizer):
        """Whatever the trainer does, the deployed (masked) weights must still
        carry the stuck-bit pattern — MAT adapts around faults, it cannot
        remove them."""
        network = Network("8-8-2", loss="binary_cross_entropy", seed=2)
        masks = FaultMaskSet.random(network, quantizer, 0.1, rng=6)
        MemoryAdaptiveTrainer(network, masks, epochs=5, seed=3).fit(toy_dataset)
        for index, layer in enumerate(network.layers):
            fmt = masks.layer_formats[index].weight_format
            words = fmt.float_to_word(layer.effective_weights)
            layer_masks = masks.layer_masks[index]
            assert np.all((words & layer_masks.weight_or) == layer_masks.weight_or)
            assert np.all((words | layer_masks.weight_and) == layer_masks.weight_and)

    def test_depth_mismatch_rejected(self, quantizer):
        network = Network("8-8-2", seed=2)
        other = Network("8-8-8-2", seed=2)
        masks = FaultMaskSet.identity(other, quantizer)
        with pytest.raises(ValueError):
            MemoryAdaptiveTrainer(network, masks)

    def test_loss_decreases_during_adaptation(self, toy_dataset, quantizer):
        network = Network("8-12-2", loss="binary_cross_entropy", seed=2)
        Trainer(network, learning_rate=0.3, epochs=20, seed=3).fit(toy_dataset)
        masks = FaultMaskSet.random(network, quantizer, 0.05, rng=8)
        trainer = MemoryAdaptiveTrainer(
            network, masks, learning_rate=0.15, epochs=15, seed=3
        )
        history = trainer.fit(toy_dataset)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_deployed_accuracy_view_matches_masked_parameters(self, toy_dataset, quantizer):
        network = Network("8-8-2", loss="binary_cross_entropy", seed=2)
        masks = FaultMaskSet.random(network, quantizer, 0.1, rng=9)
        trainer = MemoryAdaptiveTrainer(network, masks, epochs=3, seed=3)
        trainer.fit(toy_dataset)
        deployed = trainer.deployed_accuracy_view()
        x = toy_dataset.inputs[:16]
        np.testing.assert_allclose(deployed.predict(x), network.predict(x), atol=1e-6)


class TestRecoveryBehaviour:
    def test_adaptive_beats_naive_under_moderate_faults(self, digits_small):
        """The core claim of the paper, at a fault rate matching the 0.50 V
        operating point: MAT recovers most of the fault-induced error."""
        spec, train, test = digits_small
        quantizer = WeightQuantizer(total_bits=16, frac_bits=13)
        baseline = spec.build_network(seed=3)
        Trainer(baseline, learning_rate=0.2, epochs=50, seed=4).fit(train)
        baseline_error = spec.error(baseline.predict(test.inputs), test)

        masks = FaultMaskSet.random(baseline, quantizer, 0.02, rng=11)
        naive = baseline.copy()
        masks.install(naive)
        naive_error = spec.error(naive.predict(test.inputs), test)

        adaptive = baseline.copy()
        MemoryAdaptiveTrainer(
            adaptive, masks, learning_rate=0.15, epochs=40, seed=5
        ).fit(train)
        adaptive_error = spec.error(adaptive.predict(test.inputs), test)

        assert naive_error > baseline_error + 0.05
        assert adaptive_error < naive_error
        # MAT recovers at least half of the error increase
        assert (naive_error - adaptive_error) > 0.5 * (naive_error - baseline_error) - 0.05

    def test_adaptation_is_specific_to_the_trained_fault_pattern(self, toy_dataset):
        """A model adapted to one fault pattern is not automatically adapted
        to a different pattern of the same rate (the reason profiling is
        chip-specific)."""
        quantizer = WeightQuantizer(total_bits=16, frac_bits=13)
        network = Network("8-16-2", loss="binary_cross_entropy", seed=2)
        Trainer(network, learning_rate=0.3, epochs=30, seed=3).fit(toy_dataset)

        trained_masks = FaultMaskSet.random(network, quantizer, 0.08, rng=21)
        adaptive = network.copy()
        MemoryAdaptiveTrainer(
            adaptive, trained_masks, learning_rate=0.15, epochs=30, seed=5
        ).fit(toy_dataset)
        adaptive.clear_effective()

        trained_masks.install(adaptive)
        matched_error = classification_error(
            adaptive.predict(toy_dataset.inputs), toy_dataset.labels
        )
        other_masks = FaultMaskSet.random(adaptive, quantizer, 0.08, rng=99)
        other_masks.install(adaptive)
        mismatched_error = classification_error(
            adaptive.predict(toy_dataset.inputs), toy_dataset.labels
        )
        assert matched_error <= mismatched_error + 0.02
