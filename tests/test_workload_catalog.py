"""The procedural workload catalog: grammar, generators, cache keys, and the
MATIC flow on non-default chip geometries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import Snnac, SnnacConfig
from repro.datasets import (
    BENCHMARKS,
    BenchmarkSpec,
    ProceduralSpec,
    generate_lowrank,
    generate_teacher,
    get_benchmark,
    list_benchmarks,
    register_benchmark,
)
from repro.experiments.cache import ArtifactCache
from repro.experiments.common import prepare_benchmark
from repro.matic.flow import MaticFlow, TrainingConfig


class TestProceduralGrammar:
    def test_mlp_deep_stack(self):
        spec = get_benchmark("synth/mlp-d8-w256")
        assert isinstance(spec, ProceduralSpec)
        assert spec.family == "mlp"
        assert spec.topology == "32-" + "-".join(["256"] * 8) + "-8"

    def test_mlp_custom_io_widths(self):
        spec = get_benchmark("synth/mlp-d2-w16-i10-o3")
        assert spec.topology == "10-16-16-3"

    def test_wide_fan_in(self):
        spec = get_benchmark("synth/wide-f512")
        assert spec.topology == "512-16-4"
        assert get_benchmark("synth/wide-f128-h8-o2").topology == "128-8-2"

    def test_autoencoder(self):
        spec = get_benchmark("synth/ae-i64-b8")
        assert spec.topology == "64-8-64"

    def test_lookup_is_memoized(self):
        assert get_benchmark("synth/ae-i64-b8") is get_benchmark("synth/AE-i64-b8")

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError, match="family"):
            get_benchmark("synth/conv-d3")

    @pytest.mark.parametrize(
        "name",
        [
            "synth/mlp-w8",  # missing required depth
            "synth/mlp-d2-w8-d3",  # duplicate token
            "synth/mlp-d0-w8",  # non-positive value
            "synth/mlp-d2-w8-x9",  # unknown token letter
            "synth/mlp-d2-wbig",  # non-numeric value
            "synth/ae-i8-b16",  # bottleneck wider than the input
        ],
    )
    def test_invalid_names_raise(self, name):
        with pytest.raises(ValueError):
            get_benchmark(name)

    def test_unknown_plain_name_still_raises_keyerror(self):
        with pytest.raises(KeyError):
            get_benchmark("definitely-not-a-benchmark")

    def test_registered_catalog_unchanged(self):
        assert list_benchmarks() == ["mnist", "facedet", "inversek2j", "bscholes"]


class TestProceduralGenerators:
    def test_teacher_is_seed_deterministic_and_bounded(self):
        a = generate_teacher(num_samples=64, seed=7, in_features=12, out_features=3)
        b = generate_teacher(num_samples=64, seed=7, in_features=12, out_features=3)
        np.testing.assert_array_equal(a.inputs, b.inputs)
        np.testing.assert_array_equal(a.targets, b.targets)
        assert a.inputs.shape == (64, 12) and a.targets.shape == (64, 3)
        assert a.inputs.min() >= 0 and a.inputs.max() <= 1
        assert a.targets.min() >= 0 and a.targets.max() <= 1
        c = generate_teacher(num_samples=64, seed=8, in_features=12, out_features=3)
        assert not np.array_equal(a.targets, c.targets)

    def test_teacher_function_is_stable_under_sample_count(self):
        # the teacher is sampled before the inputs, so growing the dataset
        # extends it without redefining the function being learned
        small = generate_teacher(
            num_samples=16, seed=3, in_features=6, out_features=2, noise_level=0.0
        )
        large = generate_teacher(
            num_samples=64, seed=3, in_features=6, out_features=2, noise_level=0.0
        )
        np.testing.assert_array_equal(small.inputs, large.inputs[:16])
        np.testing.assert_array_equal(small.targets, large.targets[:16])

    def test_lowrank_reconstruction_targets(self):
        data = generate_lowrank(num_samples=32, seed=5, width=20, rank=4)
        np.testing.assert_array_equal(data.inputs, data.targets)
        assert data.inputs.shape == (32, 20)
        assert data.inputs.min() >= 0 and data.inputs.max() <= 1
        # inputs are (noisily) rank-4: the 5th singular value collapses
        singular_values = np.linalg.svd(
            data.inputs - data.inputs.mean(axis=0), compute_uv=False
        )
        assert singular_values[4] < 0.2 * singular_values[0]

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            generate_teacher(num_samples=0)
        with pytest.raises(ValueError):
            generate_lowrank(width=4, rank=8)

    def test_spec_generate_uses_its_parameters(self):
        spec = get_benchmark("synth/wide-f24-h4-o2")
        data = spec.generate(num_samples=10, seed=1)
        assert data.inputs.shape == (10, 24)
        assert data.targets.shape == (10, 2)
        assert data.name == "synth/wide-f24-h4-o2"
        network = spec.build_network(seed=0)
        assert network.widths == (24, 4, 2)


class TestSpecKeys:
    def test_spec_key_captures_full_parameterization(self):
        a = get_benchmark("synth/mlp-d2-w8").spec_key()
        b = get_benchmark("synth/mlp-d2-w16").spec_key()
        c = get_benchmark("synth/mlp-d2-w8-i32").spec_key()  # i32 is the default
        assert a != b
        # an explicit default resolves to the same functional parameters
        # (only the name — which stays part of the identity — differs)
        assert {k: v for k, v in a.items() if k != "name"} == {
            k: v for k, v in c.items() if k != "name"
        }
        assert "generator_params" in a and "topology" in a

    def test_paper_specs_have_keys_too(self):
        key = get_benchmark("mnist").spec_key()
        assert key["name"] == "mnist"
        assert key["topology"] == "100-32-10"

    def test_register_benchmark(self):
        spec = BenchmarkSpec(
            name="custom-test-spec",
            description="",
            topology="4-4-2",
            loss="mse",
            hidden_activation="sigmoid",
            output_activation="sigmoid",
            error_metric="mse",
            generator=generate_teacher,
            train_test_ratio=10,
            default_samples=32,
            paper_nominal_error=float("nan"),
        )
        register_benchmark(spec)
        try:
            assert get_benchmark("custom-test-spec") is spec
            with pytest.raises(ValueError):
                register_benchmark(spec)
            register_benchmark(spec, overwrite=True)
        finally:
            BENCHMARKS.pop("custom-test-spec", None)


class TestPrepareBenchmarkCaching:
    def test_procedural_workloads_memoize_on_the_full_spec(self, tmp_path):
        cache = ArtifactCache(root=tmp_path / "cache")
        kwargs = dict(num_samples=80, seed=2, epochs=2, cache=cache)
        first = prepare_benchmark("synth/ae-i12-b3", **kwargs)
        stores = cache.stats.stores
        assert stores > 0
        second = prepare_benchmark("synth/ae-i12-b3", **kwargs)
        assert cache.stats.stores == stores  # pure cache hit
        np.testing.assert_array_equal(
            first.baseline.predict(first.test.inputs),
            second.baseline.predict(second.test.inputs),
        )
        # a different parameterization of the same family must miss
        prepare_benchmark("synth/ae-i12-b4", **kwargs)
        assert cache.stats.stores > stores

    def test_prepared_procedural_benchmark_structure(self, tmp_path):
        cache = ArtifactCache(root=tmp_path / "cache")
        prepared = prepare_benchmark(
            "synth/mlp-d2-w8-i6-o2", num_samples=100, seed=1, epochs=3, cache=cache
        )
        assert prepared.name == "synth/mlp-d2-w8-i6-o2"
        assert prepared.baseline.widths == (6, 8, 8, 2)
        assert len(prepared.train) + len(prepared.test) == 100
        assert np.isfinite(prepared.baseline_error)


class TestMaticFlowOnProceduralWorkloads:
    """Acceptance: procedural specs train/deploy through MaticFlow on
    non-default geometries."""

    def _flow(self, cache=None):
        return MaticFlow(
            word_bits=16,
            training=TrainingConfig(epochs=2, learning_rate=0.15, seed=0),
            training_cache=cache,
        )

    @pytest.mark.parametrize(
        "name,geometry",
        [
            ("synth/mlp-d3-w8-i6-o2", SnnacConfig(num_pes=4, words_per_bank=128, seed=7)),
            ("synth/wide-f40-h4-o2", SnnacConfig(num_pes=2, words_per_bank=256, seed=7)),
            ("synth/ae-i16-b4", SnnacConfig(num_pes=16, words_per_bank=32, seed=7)),
        ],
    )
    def test_deploy_adaptive_on_non_default_geometry(self, name, geometry):
        spec = get_benchmark(name)
        dataset = spec.generate(num_samples=80, seed=3)
        train, test = spec.split(dataset, seed=4)
        chip = Snnac(geometry)
        deployment = self._flow().deploy_adaptive(
            chip,
            spec.topology,
            train,
            target_voltage=0.50,
            loss=spec.loss,
        )
        outputs = deployment.run_at(test.inputs)
        assert outputs.shape == (len(test), test.num_outputs)
        assert np.isfinite(spec.error(outputs, test))

    def test_deep_stack_deploys_naively_on_a_scaled_geometry(self):
        # synth/mlp-d8-w256 needs ~530k words: far beyond the fabricated
        # 8x512 chip, comfortably within a 16-PE, 64k-words-per-bank one
        spec = get_benchmark("synth/mlp-d8-w256")
        network = spec.build_network(seed=0)
        config = SnnacConfig(num_pes=16, words_per_bank=40960, seed=7)
        chip = Snnac(config)
        dataset = spec.generate(num_samples=8, seed=3)
        deployment = self._flow().deploy_naive(
            chip,
            spec.topology,
            dataset,
            target_voltage=0.9,
            loss=spec.loss,
            initial_network=network,
            profile=False,
        )
        outputs = deployment.run_at(dataset.inputs)
        assert outputs.shape == (8, 8)
        assert np.all(np.isfinite(outputs))
